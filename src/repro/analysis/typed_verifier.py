"""Typed bytecode verifier: abstract interpretation over a type lattice.

Upgrades the depth-only structural pass: every local slot and operand
stack slot carries an abstract type, merged by fixpoint at join points
and exception handlers.  The lattice reflects the ISA's documented
simplifications (one slot per value, ``I``-family arithmetic polymorphic
over ints and floats, untyped fields)::

            CONFLICT  (ref on one path, numeric on another — unusable)
            /      \\
          NUM      REF      ANY  (statically unknown: field loads;
         /   \\      |            accepted by every check)
       INT  FLOAT  null       UNINIT  (locals only; use is an error)

* ``INT ⊔ FLOAT = NUM`` — legal everywhere a number is, matching the
  polymorphic interpreter.
* ``ANY`` absorbs: values whose type the class file does not declare
  (``getfield``/``getstatic``/``iaload`` results) are dynamically
  checked by the interpreter, so the verifier stays permissive — by
  design it never rejects a class the interpreter executes.
* ``REF ⊔ numeric = CONFLICT`` and any *use* of CONFLICT or UNINIT is an
  error: type confusion and uninitialized-local reads are exactly the
  bugs a rewriter (instrumentation, JIT) can introduce.
* Definite vs. possible assignment: UNINIT means *no* path assigned the
  local (use is an error); ``UNINIT ⊔ assigned = MAYBE_UNINIT`` — some
  path misses the assignment (use is a warning, since real loop idioms
  like ``for (...) { x = ...; } use(x)`` are conservatively
  unprovable).

Findings carry severity, class, method, and instruction index.
:func:`typed_verify_class` is the gating entry point (first
error-severity finding raises :class:`~repro.errors.VerifyError` — the
``--verify typed`` classloader mode); :func:`analyze_class_types`
returns the full report for ``repro analyze``.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.bytecode.opcodes import INVOKE_OPS, Op
from repro.bytecode.verifier import verify_method
from repro.classfile.constant_pool import (
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.classfile.members import parse_descriptor
from repro.errors import ClassFileError, ConstantPoolError, VerifyError


class VType(enum.Enum):
    """Abstract value types (one operand/local slot each)."""

    INT = "int"
    FLOAT = "float"
    NUM = "num"            # int-or-float (join of the two)
    REF = "ref"
    ANY = "any"            # statically unknown, dynamically checked
    UNINIT = "uninit"      # local written on *no* path (definite)
    MAYBE_UNINIT = "maybe-uninit"  # local unwritten on *some* path
    CONFLICT = "conflict"  # ref on one path, numeric on another


_NUMERIC = (VType.INT, VType.FLOAT, VType.NUM, VType.ANY)
_REFLIKE = (VType.REF, VType.ANY)


def join_types(a: VType, b: VType) -> VType:
    """Least upper bound of two slot types."""
    if a is b:
        return a
    if VType.UNINIT in (a, b) or VType.MAYBE_UNINIT in (a, b):
        if VType.CONFLICT in (a, b):
            return VType.CONFLICT
        return VType.MAYBE_UNINIT  # assigned on one path, not the other
    if VType.CONFLICT in (a, b):
        return VType.CONFLICT
    if VType.ANY in (a, b):
        return VType.ANY
    if a in _NUMERIC and b in _NUMERIC:
        return VType.NUM
    return VType.CONFLICT  # one side numeric, the other a reference


def type_for_descriptor(type_desc: str) -> VType:
    """Abstract type of one descriptor type (param or non-void return)."""
    if type_desc[0] in "L[":
        return VType.REF
    if type_desc == "F":
        return VType.FLOAT
    return VType.INT  # I and the accepted JVM-flavoured primitives


State = Tuple[Tuple[VType, ...], Tuple[VType, ...]]  # (locals, stack)


class _Abort(Exception):
    """Stops interpreting a block after an unrecoverable finding."""


# Opcode groups sharing a transfer rule ---------------------------------------

_BINARY_ALU = frozenset({
    Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IREM, Op.ISHL, Op.ISHR,
    Op.IUSHR, Op.IAND, Op.IOR, Op.IXOR,
})
_IF_NUM1 = frozenset({Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT,
                      Op.IFGE})
_IF_NUM2 = frozenset({Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT,
                      Op.IF_ICMPLE, Op.IF_ICMPGT, Op.IF_ICMPGE})
_IF_REF1 = frozenset({Op.IFNULL, Op.IFNONNULL})
_IF_REF2 = frozenset({Op.IF_ACMPEQ, Op.IF_ACMPNE})


class TypedMethodVerifier:
    """Abstract interpretation of one method; collects findings."""

    def __init__(self, method, constant_pool, class_name: str):
        self.method = method
        self.pool = constant_pool
        self.class_name = class_name
        self.where = f"{method.name}{method.descriptor}"
        self.findings: Dict[tuple, Finding] = {}
        self._pc = 0

    # -- findings --------------------------------------------------------------

    def _report(self, severity: Severity, rule: str, message: str,
                pc: Optional[int] = None) -> None:
        pc = self._pc if pc is None else pc
        key = (rule, pc, message)
        if key not in self.findings:
            self.findings[key] = Finding(
                severity=severity, rule=rule, class_name=self.class_name,
                method=self.where, message=message, pc=pc)

    def _error(self, rule: str, message: str,
               pc: Optional[int] = None) -> None:
        self._report(Severity.ERROR, rule, message, pc=pc)

    # -- type checks -----------------------------------------------------------

    def _describe(self, t: VType) -> str:
        return t.value

    def _check_num(self, t: VType, what: str) -> None:
        if t in _NUMERIC:
            return
        if not self._check_usable(t, what):
            self._error("type-confusion",
                        f"{what} is a reference, expected a number")

    def _check_ref(self, t: VType, what: str) -> None:
        if t in _REFLIKE:
            return
        if not self._check_usable(t, what):
            self._error("type-confusion",
                        f"{what} is a {self._describe(t)}, expected a "
                        f"reference")

    def _check_usable(self, t: VType, what: str) -> bool:
        """Report UNINIT/MAYBE_UNINIT/CONFLICT use; True when reported."""
        if t is VType.UNINIT:
            self._error("uninitialized-value",
                        f"{what} is used before assignment")
        elif t is VType.MAYBE_UNINIT:
            self._report(Severity.WARNING, "uninitialized-value",
                         f"{what} may be uninitialized on some path")
        elif t is VType.CONFLICT:
            self._error("type-confusion",
                        f"{what} merges reference and numeric values")
        else:
            return False
        return True

    # -- stack helpers ---------------------------------------------------------

    def _pop(self, stack: List[VType], what: str) -> VType:
        if not stack:
            self._error("stack-underflow",
                        f"operand stack empty, needed {what}")
            raise _Abort()
        return stack.pop()

    def _pop_num(self, stack: List[VType], what: str) -> VType:
        t = self._pop(stack, what)
        self._check_num(t, what)
        return t

    def _pop_ref(self, stack: List[VType], what: str) -> VType:
        t = self._pop(stack, what)
        self._check_ref(t, what)
        return t

    # -- entry state -----------------------------------------------------------

    def entry_state(self) -> State:
        method = self.method
        locals_: List[VType] = []
        if not method.is_static:
            locals_.append(VType.REF)  # receiver
        params, _ = parse_descriptor(method.descriptor)
        locals_.extend(type_for_descriptor(p) for p in params)
        while len(locals_) < method.max_locals:
            locals_.append(VType.UNINIT)
        return tuple(locals_), ()

    # -- the transfer function -------------------------------------------------

    def step(self, ins, locals_: List[VType],
             stack: List[VType]) -> None:
        """Apply one instruction's effect in place (may record
        findings; raises :class:`_Abort` on underflow)."""
        op = ins.op

        if op is Op.NOP:
            return
        if op is Op.ICONST:
            stack.append(VType.INT)
        elif op is Op.LDC:
            stack.append(self._ldc_type(ins.operand))
        elif op is Op.ACONST_NULL:
            stack.append(VType.REF)

        elif op is Op.ILOAD:
            t = locals_[ins.operand]
            self._check_num(t, f"local {ins.operand}")
            stack.append(t if t in _NUMERIC else VType.ANY)
        elif op is Op.ALOAD:
            t = locals_[ins.operand]
            self._check_ref(t, f"local {ins.operand}")
            stack.append(t if t in _REFLIKE else VType.ANY)
        elif op is Op.ISTORE:
            locals_[ins.operand] = self._pop_num(stack, "istore value")
        elif op is Op.ASTORE:
            locals_[ins.operand] = self._pop_ref(stack, "astore value")
        elif op is Op.IINC:
            index = ins.operand[0]
            self._check_num(locals_[index], f"local {index}")
            if locals_[index] not in _NUMERIC:
                locals_[index] = VType.ANY  # recover, keep analyzing

        elif op is Op.POP:
            self._pop(stack, "pop operand")
        elif op is Op.DUP:
            t = self._pop(stack, "dup operand")
            stack.extend((t, t))
        elif op is Op.DUP_X1:
            b = self._pop(stack, "dup_x1 operand")
            a = self._pop(stack, "dup_x1 operand")
            stack.extend((b, a, b))
        elif op is Op.SWAP:
            b = self._pop(stack, "swap operand")
            a = self._pop(stack, "swap operand")
            stack.extend((b, a))

        elif op in _BINARY_ALU:
            b = self._pop_num(stack, "right operand")
            a = self._pop_num(stack, "left operand")
            if a is VType.INT and b is VType.INT:
                stack.append(VType.INT)
            elif a is VType.FLOAT and b is VType.FLOAT:
                stack.append(VType.FLOAT)
            else:
                stack.append(VType.NUM)
        elif op is Op.INEG:
            t = self._pop_num(stack, "ineg operand")
            stack.append(t if t in (VType.INT, VType.FLOAT) else VType.NUM)
        elif op is Op.FDIV:
            self._pop_num(stack, "divisor")
            self._pop_num(stack, "dividend")
            stack.append(VType.FLOAT)
        elif op is Op.I2F:
            self._pop_num(stack, "i2f operand")
            stack.append(VType.FLOAT)
        elif op is Op.F2I:
            self._pop_num(stack, "f2i operand")
            stack.append(VType.INT)
        elif op is Op.FCMP:
            self._pop_num(stack, "fcmp right")
            self._pop_num(stack, "fcmp left")
            stack.append(VType.INT)

        elif op is Op.GOTO:
            pass
        elif op in _IF_NUM1:
            self._pop_num(stack, "branch condition")
        elif op in _IF_NUM2:
            self._pop_num(stack, "branch right operand")
            self._pop_num(stack, "branch left operand")
        elif op in _IF_REF1:
            self._pop_ref(stack, "branch condition")
        elif op in _IF_REF2:
            self._pop_ref(stack, "branch right operand")
            self._pop_ref(stack, "branch left operand")

        elif op is Op.NEW:
            stack.append(VType.REF)
        elif op is Op.GETFIELD:
            self._pop_ref(stack, "getfield receiver")
            stack.append(VType.ANY)  # field types are not declared
        elif op is Op.PUTFIELD:
            value = self._pop(stack, "putfield value")
            self._check_usable(value, "putfield value")
            self._pop_ref(stack, "putfield receiver")
        elif op is Op.GETSTATIC:
            stack.append(VType.ANY)
        elif op is Op.PUTSTATIC:
            value = self._pop(stack, "putstatic value")
            self._check_usable(value, "putstatic value")
        elif op is Op.INSTANCEOF:
            self._pop_ref(stack, "instanceof operand")
            stack.append(VType.INT)
        elif op is Op.CHECKCAST:
            self._pop_ref(stack, "checkcast operand")
            stack.append(VType.REF)

        elif op is Op.NEWARRAY:
            self._pop_num(stack, "array length")
            stack.append(VType.REF)
        elif op is Op.IALOAD:
            self._pop_num(stack, "array index")
            self._pop_ref(stack, "array reference")
            stack.append(VType.NUM)  # element kind is dynamic
        elif op is Op.IASTORE:
            self._pop_num(stack, "array element")
            self._pop_num(stack, "array index")
            self._pop_ref(stack, "array reference")
        elif op is Op.AALOAD:
            self._pop_num(stack, "array index")
            self._pop_ref(stack, "array reference")
            stack.append(VType.REF)
        elif op is Op.AASTORE:
            self._pop_ref(stack, "array element")
            self._pop_num(stack, "array index")
            self._pop_ref(stack, "array reference")
        elif op is Op.ARRAYLENGTH:
            self._pop_ref(stack, "array reference")
            stack.append(VType.INT)

        elif op in INVOKE_OPS:
            self._invoke(op, ins.operand, stack)

        elif op is Op.RETURN:
            pass
        elif op is Op.IRETURN:
            self._pop_num(stack, "return value")
        elif op is Op.ARETURN:
            self._pop_ref(stack, "return value")

        elif op is Op.ATHROW:
            self._pop_ref(stack, "thrown object")
        elif op in (Op.MONITORENTER, Op.MONITOREXIT):
            self._pop_ref(stack, "monitor object")
        else:  # pragma: no cover - the ISA is fully enumerated above
            self._error("unknown-opcode", f"no transfer rule for {op!r}")
            raise _Abort()

    def _ldc_type(self, index) -> VType:
        try:
            entry = self.pool.get(index)
        except ConstantPoolError as exc:
            self._error("bad-constant", str(exc))
            return VType.ANY
        if isinstance(entry, CpInt):
            return VType.INT
        if isinstance(entry, CpFloat):
            return VType.FLOAT
        if isinstance(entry, CpString):
            return VType.REF
        self._error("bad-constant",
                    f"ldc of non-loadable constant {entry!r}")
        return VType.ANY

    def _invoke(self, op, cp_index, stack: List[VType]) -> None:
        try:
            entry = self.pool.get_typed(cp_index, CpMethodRef)
            params, ret = parse_descriptor(entry.descriptor)
        except (ConstantPoolError, ClassFileError) as exc:
            self._error("bad-constant", str(exc))
            raise _Abort()
        for param in reversed(params):
            expected = type_for_descriptor(param)
            what = (f"argument of type {param} to "
                    f"{entry.class_name}.{entry.method_name}")
            if expected is VType.REF:
                self._pop_ref(stack, what)
            else:
                self._pop_num(stack, what)
        if op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL):
            self._pop_ref(stack,
                          f"receiver of {entry.class_name}."
                          f"{entry.method_name}")
        if ret != "V":
            stack.append(type_for_descriptor(ret))

    # -- the fixpoint ----------------------------------------------------------

    def run(self) -> List[Finding]:
        method = self.method
        if method.is_native or not method.code:
            return []
        code = method.code
        cfg = build_cfg(code, method.exception_table)

        in_states: Dict[int, State] = {0: self.entry_state()}
        worklist = [0]

        def merge_into(block_index: int, locals_: Tuple[VType, ...],
                       stack: Tuple[VType, ...], from_pc: int) -> None:
            known = in_states.get(block_index)
            if known is None:
                in_states[block_index] = (locals_, stack)
                worklist.append(block_index)
                return
            known_locals, known_stack = known
            if len(known_stack) != len(stack):
                self._error(
                    "stack-merge",
                    f"inconsistent stack depth at join "
                    f"({len(known_stack)} vs {len(stack)})", pc=from_pc)
                return
            merged_locals = tuple(map(join_types, known_locals, locals_))
            merged_stack = tuple(map(join_types, known_stack, stack))
            if (merged_locals, merged_stack) != known:
                in_states[block_index] = (merged_locals, merged_stack)
                if block_index not in worklist:
                    worklist.append(block_index)

        handler_block_of = {
            entry.handler: cfg.block_of(entry.handler).index
            for entry in method.exception_table}

        iterations = 0
        limit = 50 * max(1, len(code)) * max(1, len(cfg.blocks))
        while worklist:
            iterations += 1
            if iterations > limit:  # pragma: no cover - safety valve
                self._error("fixpoint-divergence",
                            "typed dataflow did not converge")
                break
            block_index = worklist.pop()
            block = cfg.blocks[block_index]
            locals_t, stack_t = in_states[block_index]
            locals_ = list(locals_t)
            stack = list(stack_t)
            aborted = False
            for pc in block.pcs:
                self._pc = pc
                # exception edge: the handler sees this instruction's
                # locals and a one-element stack (the thrown object)
                for entry in cfg.handlers_covering(pc):
                    merge_into(handler_block_of[entry.handler],
                               tuple(locals_), (VType.REF,), pc)
                try:
                    self.step(code[pc], locals_, stack)
                except _Abort:
                    aborted = True
                    break
            if aborted:
                continue
            last_pc = block.end - 1
            for successor in block.successors:
                merge_into(successor, tuple(locals_), tuple(stack),
                           last_pc)

        for block in cfg.unreachable_blocks():
            self._report(Severity.WARNING, "unreachable-code",
                         f"instructions {block.start}..{block.end - 1} "
                         f"are unreachable", pc=block.start)

        self._check_monitor_bracketing(cfg, code)

        return list(self.findings.values())

    # -- monitor bracketing ----------------------------------------------------

    def _check_monitor_bracketing(self, cfg, code) -> None:
        """Structural MONITORENTER/MONITOREXIT balance: along every
        normal path the net monitor depth must reach zero at each
        return, never go negative, and agree at joins.  Exceptional
        exits (ATHROW, exception edges) are exempt — the runtime force-
        releases monitors on unwind.  Violations are warnings: the
        interpreter raises IllegalMonitorStateException dynamically,
        but an unbalanced method is a lock-leak bug worth flagging
        before it ever runs."""
        depth_in: Dict[int, int] = {0: 0}
        worklist = [0]
        while worklist:
            index = worklist.pop()
            depth = depth_in[index]
            block = cfg.blocks[index]
            for pc in block.pcs:
                op = code[pc].op
                if op is Op.MONITORENTER:
                    depth += 1
                elif op is Op.MONITOREXIT:
                    depth -= 1
                    if depth < 0:
                        self._report(
                            Severity.WARNING, "monitor-bracketing",
                            "monitorexit without a matching "
                            "monitorenter on some path", pc=pc)
                        depth = 0  # recover, keep checking the rest
                elif op in (Op.RETURN, Op.IRETURN, Op.ARETURN):
                    if depth != 0:
                        self._report(
                            Severity.WARNING, "monitor-bracketing",
                            f"method returns holding {depth} "
                            f"monitor(s)", pc=pc)
            for successor in block.successors:
                known = depth_in.get(successor)
                if known is None:
                    depth_in[successor] = depth
                    worklist.append(successor)
                elif known != depth:
                    self._report(
                        Severity.WARNING, "monitor-bracketing",
                        f"inconsistent monitor depth at join "
                        f"({known} vs {depth})",
                        pc=cfg.blocks[successor].start)


# -- public entry points -------------------------------------------------------


def analyze_method_types(method, constant_pool,
                         class_name: str) -> List[Finding]:
    """Typed findings for one method (empty list when clean)."""
    return TypedMethodVerifier(method, constant_pool, class_name).run()


def analyze_class_types(cf, structural: bool = True) -> AnalysisReport:
    """Full typed report for one class file.

    ``structural`` additionally runs the stack-discipline verifier first
    (its failures become error findings), so one call covers both
    layers.
    """
    report = AnalysisReport(classes_analyzed=1)
    for method in cf.methods:
        report.methods_analyzed += 1
        if structural:
            try:
                verify_method(method, cf.constant_pool,
                              class_name=cf.name)
            except VerifyError as exc:
                report.add(Finding(
                    severity=Severity.ERROR, rule="structural",
                    class_name=cf.name,
                    method=f"{method.name}{method.descriptor}",
                    message=exc.reason, pc=exc.pc))
                continue  # typed pass assumes structural soundness
        report.extend(analyze_method_types(method, cf.constant_pool,
                                           cf.name))
    return report


def typed_verify_class(cf) -> int:
    """Gate one class on the typed verifier (the ``--verify typed``
    classloader mode): raises :class:`~repro.errors.VerifyError` on the
    first error-severity finding, returns the number of methods
    verified otherwise.  Warnings (e.g. unreachable code) do not gate.
    """
    report = analyze_class_types(cf, structural=True)
    for finding in report.errors:
        raise VerifyError(finding.message, class_name=finding.class_name,
                          method=finding.method, pc=finding.pc)
    return report.methods_analyzed
