"""Control-flow graph construction over pre-decoded bytecode.

A :class:`CFG` partitions one method's code into maximal straight-line
:class:`BasicBlock` runs.  Leaders are instruction 0, every branch
target, every instruction after a control transfer, and every exception
handler entry.  Successor edges cover fall-through and branch targets;
exception edges are kept separate (``handler_blocks`` plus
:meth:`CFG.handlers_covering`) because they leave from *every*
instruction of a protected range, not from block boundaries.

The graph is the substrate of the typed verifier's fixpoint and of the
unreachable-code check; it works on :class:`MethodInfo` code whose
branch operands are already resolved to instruction indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.bytecode.instructions import ExceptionEntry, Instruction
from repro.bytecode.opcodes import OperandKind


@dataclass
class BasicBlock:
    """One maximal straight-line run ``[start, end)`` of instructions."""

    index: int
    start: int
    end: int                 # exclusive
    successors: List[int] = field(default_factory=list)  # block indices
    is_handler: bool = False

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)


class CFG:
    """Basic blocks, successor edges, and reachability for one method."""

    def __init__(self, blocks: List[BasicBlock],
                 block_index_of: Dict[int, int],
                 exception_table: Sequence[ExceptionEntry]):
        self.blocks = blocks
        self._block_index_of = block_index_of  # leader pc -> block index
        self.exception_table = list(exception_table)

    def block_of(self, pc: int) -> BasicBlock:
        """The block whose leader is ``pc`` (must be a leader)."""
        return self.blocks[self._block_index_of[pc]]

    def handlers_covering(self, pc: int) -> List[ExceptionEntry]:
        """Exception-table rows whose protected range includes ``pc``."""
        return [entry for entry in self.exception_table
                if entry.start <= pc < entry.end]

    @property
    def handler_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks if b.is_handler]

    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from the entry block, following normal and
        exception edges."""
        if not self.blocks:
            return []
        seen = {0}
        stack = [0]
        while stack:
            block = self.blocks[stack.pop()]
            targets = list(block.successors)
            for pc in block.pcs:
                for entry in self.handlers_covering(pc):
                    targets.append(self._block_index_of[entry.handler])
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return [self.blocks[i] for i in sorted(seen)]

    def unreachable_blocks(self) -> List[BasicBlock]:
        reachable = {b.index for b in self.reachable_blocks()}
        return [b for b in self.blocks if b.index not in reachable]


def build_cfg(code: Sequence[Instruction],
              exception_table: Sequence[ExceptionEntry]) -> CFG:
    """Partition ``code`` into basic blocks and wire successor edges."""
    n = len(code)
    leaders = {0}
    handler_pcs = set()
    for pc, ins in enumerate(code):
        spec = ins.spec
        if spec.operand is OperandKind.LABEL:
            leaders.add(ins.operand)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif spec.ends_block and pc + 1 < n:
            leaders.add(pc + 1)
    for entry in exception_table:
        leaders.add(entry.handler)
        handler_pcs.add(entry.handler)

    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_index_of: Dict[int, int] = {}
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else n
        block = BasicBlock(index=i, start=start, end=end,
                           is_handler=start in handler_pcs)
        blocks.append(block)
        block_index_of[start] = i

    for block in blocks:
        last = code[block.end - 1]
        spec = last.spec
        if spec.operand is OperandKind.LABEL:
            block.successors.append(block_index_of[last.operand])
        if not spec.ends_block and block.end < n:
            block.successors.append(block_index_of[block.end])

    return CFG(blocks, block_index_of, exception_table)
