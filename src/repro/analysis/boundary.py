"""Native-boundary analysis: static J2N/N2J views of the call graph.

The paper's measurements hinge on the Java↔native boundary; this module
computes its *static* shape so the harness can cross-check the dynamic
IPA counters against it:

* **Declared natives** — every ``native`` method in the archives.  This
  is the ground set: a native can be entered with no bytecode call site
  at all (JNI ``CallStaticIntMethod``-style entry from the host), so
  method *sets*, not site sets, are what the dynamic run must stay
  inside.
* **J2N call sites** — ``invoke*`` instructions whose CHA cone contains
  a native method: the static upper bound of Figure-1's J2N arrows.
* **Reachable natives** — declared natives inside the CHA cone of the
  entry points; declared-but-unreachable natives are reported so a
  too-small dynamic count is explainable.
* **N2J candidates** — non-native methods native code could call back
  into.  Host natives receive object references and the JNI env, so the
  static over-approximation is: non-native methods of any class that
  declares a native, plus every ``run()V`` (thread bodies are started
  from the host scheduler).

:func:`cross_check` then compares a dynamic native-method set (recorded
by the VM at first resolution, zero simulated cost) against the static
set, normalizing instrumentation renames (``_$$ipa$$_foo`` ↔ ``foo``)
and ignoring the agent's own runtime class.  Every dynamically observed
native must be statically declared — a violation means the static
analysis (or the archive set given to it) is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.callgraph import CallGraph, CallSite, qualified_name
from repro.instrument.wrapper_gen import InstrumentationConfig


@dataclass
class NativeBoundaryReport:
    """Static boundary facts extracted from one call graph."""

    declared_natives: Set[str] = field(default_factory=set)
    j2n_sites: List[CallSite] = field(default_factory=list)
    reachable_natives: Set[str] = field(default_factory=set)
    n2j_candidates: Set[str] = field(default_factory=set)

    @property
    def unreachable_natives(self) -> Set[str]:
        return self.declared_natives - self.reachable_natives

    def to_json(self) -> dict:
        return {
            "declared_natives": sorted(self.declared_natives),
            "reachable_natives": sorted(self.reachable_natives),
            "unreachable_natives": sorted(self.unreachable_natives),
            "n2j_candidates": sorted(self.n2j_candidates),
            "j2n_sites": [site.to_json() for site in self.j2n_sites],
        }


def analyze_boundary(graph: CallGraph) -> NativeBoundaryReport:
    """Slice the native boundary out of a CHA call graph."""
    report = NativeBoundaryReport()
    report.declared_natives = {
        qname for qname, method in graph.methods.items()
        if method.is_native}

    for site in graph.call_sites:
        if any(target in report.declared_natives
               for target in site.targets):
            report.j2n_sites.append(site)

    reachable = graph.reachable()
    report.reachable_natives = report.declared_natives & reachable

    native_owners = {graph.owner[qname]
                     for qname in report.declared_natives}
    for qname, method in graph.methods.items():
        if method.is_native:
            continue
        if graph.owner[qname] in native_owners or (
                method.name == "run" and method.descriptor == "()V"):
            report.n2j_candidates.add(qname)

    return report


def normalize_native_name(qname: str,
                          config: Optional[InstrumentationConfig] = None
                          ) -> Optional[str]:
    """Fold an instrumented native's qualified name back to the original
    (``pkg.C._$$ipa$$_foo(...)`` → ``pkg.C.foo(...)``); ``None`` for the
    agent's own runtime class, which is outside the measured boundary.
    """
    config = config or InstrumentationConfig()
    if qname.startswith(config.runtime_class + "."):
        return None
    return qname.replace(config.prefix, "", 1)


@dataclass
class BoundaryCheck:
    """Result of the static-vs-dynamic native-set comparison."""

    static_natives: Set[str] = field(default_factory=set)
    dynamic_natives: Set[str] = field(default_factory=set)

    @property
    def covered(self) -> Set[str]:
        """Statically declared natives the dynamic run actually hit."""
        return self.static_natives & self.dynamic_natives

    @property
    def uncovered(self) -> Set[str]:
        """Static-only natives (declared, never invoked in this run)."""
        return self.static_natives - self.dynamic_natives

    @property
    def violations(self) -> Set[str]:
        """Dynamically observed natives missing from the static set —
        must be empty for a sound static analysis."""
        return self.dynamic_natives - self.static_natives

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def coverage(self) -> float:
        """Fraction of declared natives exercised dynamically."""
        if not self.static_natives:
            return 1.0
        return len(self.covered) / len(self.static_natives)

    def to_json(self) -> dict:
        return {
            "static_natives": len(self.static_natives),
            "dynamic_natives": len(self.dynamic_natives),
            "covered": len(self.covered),
            "coverage": round(self.coverage, 4),
            "uncovered": sorted(self.uncovered),
            "violations": sorted(self.violations),
            "ok": self.ok,
        }

    def summary(self) -> str:
        status = "OK" if self.ok else (
            f"VIOLATION ({len(self.violations)} dynamic-only)")
        return (f"native boundary: {len(self.covered)}/"
                f"{len(self.static_natives)} declared natives covered "
                f"dynamically ({self.coverage:.0%}), "
                f"{len(self.uncovered)} static-only — {status}")


def cross_check(report: NativeBoundaryReport,
                dynamic_qnames: Iterable[str],
                config: Optional[InstrumentationConfig] = None
                ) -> BoundaryCheck:
    """Compare the static native set against dynamically invoked
    natives (both normalized for instrumentation renames)."""
    config = config or InstrumentationConfig()
    check = BoundaryCheck()
    for qname in report.declared_natives:
        normalized = normalize_native_name(qname, config)
        if normalized is not None:
            check.static_natives.add(normalized)
    for qname in dynamic_qnames:
        normalized = normalize_native_name(qname, config)
        if normalized is not None:
            check.dynamic_natives.add(normalized)
    return check
