"""Whole-program analysis driver: one call, every pass.

Glues the pieces together for ``repro analyze`` and the harness's
boundary cross-check: builds the class hierarchy over a set of
archives, runs the structural + typed verifier over every method, wires
the CHA call graph, slices the native boundary, and (optionally) lints
the Figure-2 instrumentation.  Also folds the results into a
:class:`~repro.observability.metrics.MetricsRegistry` so analysis
counters travel with the run's other metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.boundary import (
    BoundaryCheck,
    NativeBoundaryReport,
    analyze_boundary,
    cross_check,
)
from repro.analysis.callgraph import (
    CallGraph,
    build_call_graph,
    build_hierarchy,
)
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.lint import lint_classfile
from repro.analysis.races import RaceAnalysis, RaceCheck, analyze_races
from repro.analysis.typed_verifier import analyze_class_types
from repro.instrument.wrapper_gen import InstrumentationConfig


@dataclass
class AnalysisResult:
    """Everything one driver pass produced."""

    report: AnalysisReport
    graph: CallGraph
    boundary: NativeBoundaryReport
    races: Optional[RaceAnalysis] = None

    def to_json(self) -> dict:
        data = {
            "report": self.report.to_json(),
            "boundary": self.boundary.to_json(),
            "entry_points": sorted(self.graph.entry_points),
            "call_graph_size": {
                "methods": len(self.graph.methods),
                "call_sites": len(self.graph.call_sites),
                "edges": sum(len(v) for v in self.graph.edges.values()),
            },
        }
        if self.races is not None:
            data["races"] = self.races.to_json()
        return data


def analyze_archives(archives,
                     check_instrumentation: bool = False,
                     instrumentation: Optional[InstrumentationConfig]
                     = None,
                     require_instrumented: bool = True,
                     typed: bool = True,
                     races: bool = False) -> AnalysisResult:
    """Run verifier (+ optional linter) + CHA + boundary over
    ``archives`` (classpath order)."""
    report = AnalysisReport()
    hierarchy = build_hierarchy(archives)

    for cf in hierarchy.classes.values():
        if typed:
            report.merge(analyze_class_types(cf))
        else:
            report.classes_analyzed += 1
            report.methods_analyzed += len(cf.methods)
        if check_instrumentation:
            report.extend(lint_classfile(
                cf, instrumentation,
                require_instrumented=require_instrumented))

    graph = build_call_graph(hierarchy)
    for site in graph.unresolved:
        report.add(Finding(
            severity=Severity.INFO, rule="unresolved-call",
            class_name=graph.owner.get(site.caller, ""),
            method=site.caller, pc=site.pc,
            message=f"no target found for {site.symbolic}"))

    boundary = analyze_boundary(graph)
    race_result = None
    if races:
        race_result = analyze_races(hierarchy, graph)
        report.merge(race_result.report)
    return AnalysisResult(report=report, graph=graph,
                          boundary=boundary, races=race_result)


def static_native_check(archives,
                        dynamic_qnames: Iterable[str],
                        instrumentation: Optional[InstrumentationConfig]
                        = None) -> BoundaryCheck:
    """The harness-facing shortcut: static boundary of ``archives``
    cross-checked against the natives a run actually resolved."""
    hierarchy = build_hierarchy(archives)
    boundary = analyze_boundary(build_call_graph(hierarchy))
    return cross_check(boundary, dynamic_qnames, instrumentation)


def static_race_check(archives, dynamic_races) -> RaceCheck:
    """The harness-facing shortcut for ``--race-check``: static race
    prediction over ``archives`` intersected with the races a sanitized
    run actually confirmed (dynamic must be a subset of static)."""
    hierarchy = build_hierarchy(archives)
    analysis = analyze_races(hierarchy)
    return RaceCheck(analysis.racy_fields, list(dynamic_races))


def record_analysis_metrics(registry, result: AnalysisResult,
                            check: Optional[BoundaryCheck] = None
                            ) -> None:
    """Fold analysis results into a metrics registry."""
    counts = result.report.counts()
    registry.inc("analysis_classes_analyzed",
                 result.report.classes_analyzed)
    registry.inc("analysis_methods_verified",
                 result.report.methods_analyzed)
    for severity, count in counts.items():
        registry.inc(f"analysis_findings_{severity}", count)
    registry.inc("analysis_static_j2n_sites",
                 len(result.boundary.j2n_sites))
    registry.inc("analysis_static_natives",
                 len(result.boundary.declared_natives))
    if check is not None:
        registry.set_gauge("analysis_native_coverage", check.coverage)
        registry.inc("analysis_boundary_violations",
                     len(check.violations))
    if result.races is not None:
        registry.inc("race_warnings", result.races.race_warnings)
        registry.inc("lockset_violations",
                     result.races.lockset_violations)
        registry.inc("deadlock_potentials",
                     result.races.deadlock_potentials)
