"""Static analysis subsystem.

Whole-program analyses over class archives, all working on pre-decoded
bytecode (instruction indices, resolved labels):

* :mod:`repro.analysis.cfg` — basic blocks and control-flow graphs;
* :mod:`repro.analysis.typed_verifier` — abstract-interpretation typed
  verifier (type lattice, fixpoint merge at joins and handlers);
* :mod:`repro.analysis.callgraph` — class hierarchy + CHA call graph;
* :mod:`repro.analysis.boundary` — static J2N/N2J native-boundary
  analysis and the static-vs-dynamic cross-check;
* :mod:`repro.analysis.lint` — Figure-2 instrumentation linter;
* :mod:`repro.analysis.races` — thread-escape + Eraser-lockset race
  prediction and the dynamic-vs-static race cross-check;
* :mod:`repro.analysis.locks` — static lock-order graph and
  deadlock-potential cycles;
* :mod:`repro.analysis.driver` — one-call driver + metrics folding;
* :mod:`repro.analysis.findings` — the shared finding/report types.
"""

from repro.analysis.boundary import (
    BoundaryCheck,
    NativeBoundaryReport,
    analyze_boundary,
    cross_check,
)
from repro.analysis.callgraph import (
    CallGraph,
    ClassHierarchy,
    build_call_graph,
    build_hierarchy,
)
from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.driver import (
    AnalysisResult,
    analyze_archives,
    record_analysis_metrics,
    static_native_check,
    static_race_check,
)
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.lint import lint_archives, lint_classfile
from repro.analysis.locks import LockOrderGraph
from repro.analysis.races import RaceAnalysis, RaceCheck, analyze_races
from repro.analysis.typed_verifier import (
    analyze_class_types,
    analyze_method_types,
    typed_verify_class,
)

__all__ = [
    "AnalysisReport",
    "AnalysisResult",
    "BasicBlock",
    "BoundaryCheck",
    "CFG",
    "CallGraph",
    "ClassHierarchy",
    "Finding",
    "LockOrderGraph",
    "NativeBoundaryReport",
    "RaceAnalysis",
    "RaceCheck",
    "Severity",
    "analyze_archives",
    "analyze_boundary",
    "analyze_races",
    "analyze_class_types",
    "analyze_method_types",
    "build_call_graph",
    "build_cfg",
    "build_hierarchy",
    "cross_check",
    "lint_archives",
    "lint_classfile",
    "record_analysis_metrics",
    "static_native_check",
    "static_race_check",
    "typed_verify_class",
]
