"""E1-E3: Table I — execution time and profiling overhead for SPA and
IPA over SPEC JVM98 + JBB2005 equivalents.

Each (workload, agent) cell is one pytest-benchmark case; the final
test assembles the full table from the collected results, prints it in
the paper's layout, and asserts the result *shape* the paper reports:

* SPA overhead is 2-4 orders of magnitude above IPA's on every row;
* SPA's spread spans roughly 800 % - 50 000 % with mtrt at the top and
  db at the bottom;
* IPA stays below ~25 % with jack/jbb2005 the most expensive rows.

Absolute seconds are smaller than the paper's (reduced problem scale —
see EXPERIMENTS.md); overhead percentages are scale-invariant.
"""

from pathlib import Path

import pytest

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import Table1, _geomean_row, \
    _row_from_results
from repro.harness.report import render_table1
from repro.harness.runner import execute
from repro.workloads import full_suite, get_workload
from repro.workloads.base import MetricKind

from conftest import BENCH_SCALE

WORKLOADS = [w.name for w in full_suite()]
AGENTS = {
    "original": AgentSpec.none,
    "spa": AgentSpec.spa,
    "ipa": AgentSpec.ipa,
}

#: Paper values for the record (EXPERIMENTS.md compares against these).
PAPER_SPA_OVERHEAD = {
    "compress": 7667.60, "jess": 15819.46, "db": 1527.23,
    "javac": 5813.95, "mpegaudio": 9801.57, "mtrt": 41775.00,
    "jack": 3448.13, "jbb2005": 10820.18,
}
PAPER_IPA_OVERHEAD = {
    "compress": 11.15, "jess": 2.68, "db": 0.70, "javac": 13.68,
    "mpegaudio": 4.33, "mtrt": 0.00, "jack": 20.17, "jbb2005": 20.43,
}

_results = {}


def _run(name, agent_key):
    workload = get_workload(name, scale=BENCH_SCALE)
    config = RunConfig(agent=AGENTS[agent_key]())
    result = execute(workload, config)
    _results[(name, agent_key)] = result
    return result


@pytest.mark.parametrize("agent_key", list(AGENTS))
@pytest.mark.parametrize("name", WORKLOADS)
def test_table1_cell(benchmark, name, agent_key):
    """One Table I cell: run the workload under one configuration."""
    result = benchmark.pedantic(_run, args=(name, agent_key),
                                rounds=1, iterations=1)
    benchmark.extra_info["virtual_cycles"] = result.cycles
    benchmark.extra_info["virtual_seconds"] = result.seconds
    assert result.validation_ok


def test_table1_assemble_and_check(benchmark):
    """Assemble Table I from the cells and assert the paper's shape."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in WORKLOADS:
        for agent_key in AGENTS:
            if (name, agent_key) not in _results:
                _run(name, agent_key)

    time_rows, throughput_rows = [], []
    for name in WORKLOADS:
        workload = get_workload(name, scale=BENCH_SCALE)
        row = _row_from_results(
            workload,
            _results[(name, "original")],
            _results[(name, "spa")],
            _results[(name, "ipa")])
        if workload.metric is MetricKind.TIME:
            time_rows.append(row)
        else:
            throughput_rows.append(row)
    table = Table1(time_rows, _geomean_row(time_rows),
                   throughput_rows, {},
                   throughput_geomean_row=_geomean_row(
                       throughput_rows, MetricKind.THROUGHPUT))
    rendered = render_table1(table)
    print()
    print(rendered)
    out_dir = Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "table1.txt").write_text(rendered + "\n")

    by_name = {row.benchmark: row for row in table.rows}
    for name in WORKLOADS:
        row = by_name[name]
        spa, ipa = row.overhead_spa_percent, row.overhead_ipa_percent
        # the paper's headline: SPA is catastrophic, IPA moderate
        assert spa > 500, (name, spa)
        assert spa < 60_000, (name, spa)
        assert ipa < 25, (name, ipa)
        assert spa > 50 * max(ipa, 0.2), (name, spa, ipa)
    jvm98 = [by_name[n] for n in WORKLOADS if n != "jbb2005"]
    top = max(jvm98, key=lambda r: r.overhead_spa_percent)
    bottom = min(jvm98, key=lambda r: r.overhead_spa_percent)
    assert top.benchmark == "mtrt", top.benchmark     # paper: 41775 %
    assert bottom.benchmark == "db", bottom.benchmark  # paper: 1527 %
    # IPA's most expensive JVM98 row is jack in the paper
    worst_ipa = max(jvm98, key=lambda r: r.overhead_ipa_percent)
    assert worst_ipa.benchmark in ("jack", "javac")
