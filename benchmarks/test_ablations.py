"""E5-E7: ablations over the design choices the paper discusses.

* **E5 static vs dynamic instrumentation** (Section IV): dynamic
  ClassFileLoadHook rewriting costs simulated cycles during the
  profiled run; static instrumentation is free at runtime.  Both must
  report identical transition counts.
* **E6 timestamp compensation** (Section IV, last paragraph):
  subtracting the average wrapper cost from every measured span
  materially improves IPA's accuracy against the simulator oracle.
* **E7 JIT veto decomposition** (Section V): SPA's overhead is the
  product of two effects — losing the JIT and paying per-event costs.
  Running the *unprofiled* workload with the JIT forced off isolates
  the first factor; the events must account for most of the rest.
"""

import pytest

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.workloads import get_workload

from conftest import BENCH_SCALE


def _run(name, agent_spec, jit_enabled=True):
    workload = get_workload(name, scale=BENCH_SCALE)
    config = RunConfig(
        agent=agent_spec,
        vm_config=VMConfig(jit_policy=JitPolicy(enabled=jit_enabled)))
    return execute(workload, config)


class TestE5InstrumentationMode:
    @pytest.mark.parametrize("name", ["jess", "javac"])
    def test_dynamic_costs_more_same_counts(self, benchmark, name):
        def work():
            static = _run(name, AgentSpec.ipa(
                instrumentation="static"))
            dynamic = _run(name, AgentSpec.ipa(
                instrumentation="dynamic"))
            return static, dynamic

        static, dynamic = benchmark.pedantic(work, rounds=1,
                                             iterations=1)
        benchmark.extra_info["static_cycles"] = static.cycles
        benchmark.extra_info["dynamic_cycles"] = dynamic.cycles
        assert dynamic.cycles > static.cycles
        assert static.agent_report["native_method_calls"] == \
            dynamic.agent_report["native_method_calls"]
        # dynamic instrumentation only ever rewrites classes that are
        # actually loaded; the offline pass covers the whole archive
        assert 0 < dynamic.agent_report["methods_wrapped"] <= \
            static.agent_report["methods_wrapped"]
        extra = (dynamic.cycles - static.cycles) / static.cycles * 100
        print(f"\n[E5:{name}] dynamic instrumentation adds "
              f"{extra:.2f}% over static")


class TestE6Compensation:
    @pytest.mark.parametrize("name", ["jess", "jbb2005"])
    def test_compensation_reduces_error(self, benchmark, name):
        def work():
            baseline = _run(name, AgentSpec.none())
            with_comp = _run(name, AgentSpec.ipa(compensate=True))
            without = _run(name, AgentSpec.ipa(compensate=False))
            return baseline, with_comp, without

        baseline, with_comp, without = benchmark.pedantic(
            work, rounds=1, iterations=1)
        truth = baseline.ground_truth_native_fraction * 100
        err_with = abs(
            with_comp.agent_report["percent_native"] - truth)
        err_without = abs(
            without.agent_report["percent_native"] - truth)
        benchmark.extra_info["error_compensated_pts"] = err_with
        benchmark.extra_info["error_uncompensated_pts"] = err_without
        print(f"\n[E6:{name}] truth={truth:.2f}%  "
              f"compensated err={err_with:.2f}pts  "
              f"uncompensated err={err_without:.2f}pts")
        assert err_with < err_without
        assert err_with < 2.5


class TestE7JitVeto:
    @pytest.mark.parametrize("name", ["mtrt", "db"])
    def test_decompose_spa_overhead(self, benchmark, name):
        def work():
            base = _run(name, AgentSpec.none())
            no_jit = _run(name, AgentSpec.none(), jit_enabled=False)
            spa = _run(name, AgentSpec.spa())
            return base, no_jit, spa

        base, no_jit, spa = benchmark.pedantic(work, rounds=1,
                                               iterations=1)
        jit_loss_factor = no_jit.cycles / base.cycles
        total_factor = spa.cycles / base.cycles
        event_factor = spa.cycles / no_jit.cycles
        benchmark.extra_info["jit_loss_factor"] = jit_loss_factor
        benchmark.extra_info["event_factor"] = event_factor
        print(f"\n[E7:{name}] SPA x{total_factor:.1f} = "
              f"JIT-loss x{jit_loss_factor:.1f} * "
              f"events x{event_factor:.1f}")
        # both factors are real (for call-dense mtrt the events
        # dominate; for call-sparse db both are modest — which is
        # exactly why db has the smallest SPA overhead of Table I)
        assert jit_loss_factor > 1.5
        assert event_factor > (2.0 if name == "mtrt" else 1.2)
        assert total_factor == pytest.approx(
            jit_loss_factor * event_factor, rel=1e-9)
