"""E8-E9: the paper's future-work extension and related-work baseline.

* **E8 call chains** (Section VII): the CallChainAgent recovers
  complete mixed Java/native calling contexts — including chains that
  cross the boundary several frames deep — which neither Java-only nor
  system-specific profilers can see.
* **E9 counting baseline** (Section VI): the Kaffe-style
  invocation-counting approach recovers the same native call counts as
  IPA but no timing, at an interpreted-VM price.
"""

import pytest

from repro.agents.callchain import CallChainAgent
from repro.agents.counting import CountingAgent
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.workloads import get_workload

from conftest import BENCH_SCALE


class TestE8CallChains:
    @pytest.mark.parametrize("name", ["javac", "jack"])
    def test_mixed_chains_recovered(self, benchmark, name):
        def work():
            agent = CallChainAgent()
            result = execute(
                get_workload(name, scale=BENCH_SCALE),
                RunConfig(agent=AgentSpec("callchain",
                                          lambda: agent)))
            return agent, result

        agent, result = benchmark.pedantic(work, rounds=1,
                                           iterations=1)
        chains = agent.mixed_chains()
        benchmark.extra_info["mixed_chains"] = len(chains)
        assert chains
        # at least one chain crosses Java frames before reaching native
        assert any(len(chain) >= 3 for chain, _, _ in chains), \
            [chain for chain, _, _ in chains[:5]]
        deepest = agent.deepest_chain()
        print(f"\n[E8:{name}] {len(chains)} mixed chains, deepest "
              f"context {len(deepest)} frames")
        for chain, calls, cycles in chains[:3]:
            print(f"  {calls:6d}x {cycles:10,}cy  "
                  + " -> ".join(chain))


class TestE9CountingBaseline:
    @pytest.mark.parametrize("name", ["jess"])
    def test_counts_match_ipa_but_no_timing(self, benchmark, name):
        def work():
            counting = execute(
                get_workload(name, scale=BENCH_SCALE),
                RunConfig(agent=AgentSpec("counting", CountingAgent)))
            ipa = execute(
                get_workload(name, scale=BENCH_SCALE),
                RunConfig(agent=AgentSpec.ipa()))
            base = execute(get_workload(name, scale=BENCH_SCALE),
                           RunConfig(agent=AgentSpec.none()))
            return counting, ipa, base

        counting, ipa, base = benchmark.pedantic(work, rounds=1,
                                                 iterations=1)
        counted = counting.agent_report["native_method_invocations"]
        ipa_counted = ipa.agent_report["native_method_calls"]
        benchmark.extra_info["counting_natives"] = counted
        benchmark.extra_info["ipa_natives"] = ipa_counted
        # same program, same native invocations (IPA's own runtime
        # methods are excluded from its count by design)
        assert counted == ipa_counted
        # but the baseline cannot say where CPU time goes...
        assert "percent_native" not in counting.agent_report
        # ...and pays an interpreted-VM price for the counts
        assert counting.cycles / base.cycles > 5
        assert counting.jit_vetoed
        print(f"\n[E9:{name}] counting agent: {counted} native "
              f"invocations at x"
              f"{counting.cycles / base.cycles:.1f} slowdown; "
              f"IPA: {ipa_counted} at x"
              f"{ipa.cycles / base.cycles:.2f}")


class TestE10SamplingBaseline:
    """E10: the tprof-style sampling profiler — near-zero overhead and
    decent accuracy, but no portability story and no transition counts
    (the paper's Section VI contrast)."""

    @pytest.mark.parametrize("name", ["jack"])
    def test_cheap_but_blind_to_transitions(self, benchmark, name):
        from repro.agents.sampling import SamplingProfiler

        def work():
            base = execute(get_workload(name, scale=BENCH_SCALE),
                           RunConfig(agent=AgentSpec.none()))
            sampled = execute(
                get_workload(name, scale=BENCH_SCALE),
                RunConfig(agent=AgentSpec.none(),
                          sampler=lambda: SamplingProfiler(
                              interval=10_000)))
            ipa = execute(get_workload(name, scale=BENCH_SCALE),
                          RunConfig(agent=AgentSpec.ipa()))
            return base, sampled, ipa

        base, sampled, ipa = benchmark.pedantic(work, rounds=1,
                                                iterations=1)
        truth = base.ground_truth_native_fraction * 100
        est = sampled.sampler_report["percent_native"]
        overhead = (sampled.cycles / base.cycles - 1) * 100
        benchmark.extra_info["sampling_estimate"] = est
        benchmark.extra_info["sampling_overhead_pct"] = overhead
        print(f"\n[E10:{name}] truth={truth:.2f}%  "
              f"sampling={est:.2f}% at {overhead:.2f}% overhead  "
              f"(IPA={ipa.agent_report['percent_native']:.2f}% at "
              f"{(ipa.cycles / base.cycles - 1) * 100:.2f}%)")
        assert overhead < 3.0
        assert est == pytest.approx(truth, abs=5.0)
        assert sampled.sampler_report["jni_calls"] is None
        assert ipa.agent_report["jni_calls"] is not None
