"""Interpreter host-performance smoke test.

Times the JVM98 suite under the ``none`` agent through the bench
harness and enforces a conservative floor on simulated instructions per
host second.  The floor is far below what the quickened interpreter
sustains (>1M instr/s on a development machine) but above what a
regression to per-instruction constant-pool resolution would deliver —
it catches order-of-magnitude slips, not noise.

Run with ``pytest benchmarks/test_perf_smoke.py``; ``repro bench``
produces the full measurement document (``BENCH_interpreter.json``).
"""

from repro.harness.bench import format_bench, run_bench

#: Simulated instructions per host-wall-clock second, whole suite.
MIN_INSTRUCTIONS_PER_SECOND = 250_000


def test_interpreter_throughput_floor(bench_scale):
    doc = run_bench(scale=bench_scale)
    print()
    print(format_bench(doc))
    assert doc["instructions"] > 1_000_000
    assert doc["instructions_per_second"] >= MIN_INSTRUCTIONS_PER_SECOND


def test_bench_document_shape(bench_scale):
    doc = run_bench(scale=bench_scale)
    assert doc["benchmark"] == "jvm98/none-agent"
    assert doc["scale"] == bench_scale
    assert doc["tier"] == "template"
    assert doc["host_seconds"] > 0
    for row in doc["per_workload"].values():
        assert row["instructions"] > 0
        assert row["instructions_per_second"] > 0


def test_template_tier_speedup(bench_scale):
    """The template tier must beat the plain interpreter by >= 1.5x.

    Measured on ``db``, the most bytecode-bound workload, where the
    back-to-back A/B is stable (~2.7x in development; suite-level
    ratios swing with host load because several workloads are dominated
    by sub-resolution launch time).  Simulated instruction counts must
    not move at all."""
    from repro.workloads import get_workload

    templated = run_bench(
        workloads=[get_workload("db", scale=2 * bench_scale)],
        tier="template")
    interp = run_bench(
        workloads=[get_workload("db", scale=2 * bench_scale)],
        tier="interp")
    assert templated["instructions"] == interp["instructions"]
    speedup = (templated["instructions_per_second"]
               / interp["instructions_per_second"])
    print(f"\ntemplate tier speedup (db): {speedup:.2f}x "
          f"({interp['instructions_per_second']:,} -> "
          f"{templated['instructions_per_second']:,} instr/s)")
    assert speedup >= 1.5
