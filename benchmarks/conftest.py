"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` (default 1) multiplies every workload's problem
size; the paper's ratios are scale-invariant, so 1 keeps wall time low.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))


@pytest.fixture(scope="session")
def bench_scale() -> int:
    return BENCH_SCALE
