"""Preemptive N-core scheduler: crash-path bugfixes and determinism.

Four seed crash paths are pinned here with regression tests:

* contended ``MONITORENTER`` blocks the acquirer under the scheduler
  instead of crashing the host with ``DeadlockError``;
* ``MONITOREXIT`` by a non-owner (or past count zero) raises the
  *Java* ``IllegalMonitorStateException``, catchable by bytecode;
* joining a running thread produces the deadlock detector's structured
  report (``DeadlockError.cycle`` names every wait-for edge) in both
  the sequential and the scheduled model;
* a thread that dies with an uncaught exception in the drain phase is
  recorded (``vm.thread_deaths``, the ``uncaught_thread_exceptions``
  metric) and makes the table commands exit non-zero.

Plus the scheduler guarantees: repeat runs are byte-identical, both
execution tiers agree on every simulated cycle at any core count, and
``--cores 1`` keeps the legacy sequential semantics.
"""

from __future__ import annotations

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.cli import main
from repro.errors import DeadlockError
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.jvm.machine import VMConfig
from repro.observability import ObservabilityConfig
from repro.workloads.base import Workload
from repro.workloads.suite import _REGISTRY, register
from tests.helpers import build_app, run_main

SPIN = 60_000  # loop iterations; several quanta of simulated cycles


def _locker_app():
    """Two threads serialize a long critical section on one lock."""
    c = ClassAssembler("t.Locker", super_name="java.lang.Thread")
    c.field("lock")
    c.field("done", default=0)
    with c.method("<init>", "(Ljava.lang.Object;)V") as m:
        m.aload(0).aload(1).putfield("t.Locker", "lock")
        m.return_()
    with c.method("run", "()V") as m:
        m.aload(0).getfield("t.Locker", "lock").monitorenter()
        m.iconst(0).istore(1)
        m.label("spin")
        m.iload(1).ldc(SPIN).if_icmpge("out")
        m.iinc(1, 1).goto("spin")
        m.label("out")
        m.aload(0).getfield("t.Locker", "lock").monitorexit()
        m.aload(0).iconst(1).putfield("t.Locker", "done")
        m.return_()

    main_c = ClassAssembler("t.Main")
    with main_c.method("main", "()V", static=True) as m:
        m.new("java.lang.Object").dup()
        m.invokespecial("java.lang.Object", "<init>", "()V").astore(0)
        for slot in (1, 2):
            m.new("t.Locker").dup().aload(0)
            m.invokespecial("t.Locker", "<init>",
                            "(Ljava.lang.Object;)V")
            m.astore(slot)
        for slot in (1, 2):
            m.aload(slot).invokevirtual("t.Locker", "start", "()V")
        for slot in (1, 2):
            m.aload(slot).invokevirtual("t.Locker", "join", "()V")
        m.getstatic("java.lang.System", "out")
        m.aload(1).getfield("t.Locker", "done")
        m.aload(2).getfield("t.Locker", "done").iadd()
        m.invokevirtual("java.io.PrintStream", "println", "(I)V")
        m.return_()
    return build_app(c, main_c)


class TestContendedMonitor:
    def test_contended_enter_blocks_instead_of_crashing(self):
        # seed code raised a host DeadlockError the moment the second
        # thread touched the held monitor; under the scheduler it must
        # block, be handed the lock, and finish
        vm = run_main(_locker_app(), "t.Main",
                      config=VMConfig(cores=2))
        assert vm.console[-1] == "2"
        assert vm.scheduler.monitor_contentions >= 1
        assert vm.scheduler.deadlocks_detected == 0

    def test_sequential_contention_is_a_structured_error(self):
        # at --cores 1 a contended monitor still cannot block (there
        # is one host stack); the error must now carry the wait-for
        # cycle instead of an ad-hoc message
        holder = ClassAssembler("t.Holder",
                                super_name="java.lang.Thread")
        holder.field("lock")
        with holder.method("<init>", "(Ljava.lang.Object;)V") as m:
            m.aload(0).aload(1).putfield("t.Holder", "lock")
            m.return_()
        with holder.method("run", "()V") as m:
            # acquire and return still holding the monitor
            m.aload(0).getfield("t.Holder", "lock").monitorenter()
            m.return_()
        main_c = ClassAssembler("t.Main")
        with main_c.method("main", "()V", static=True) as m:
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.new("t.Holder").dup().aload(0)
            m.invokespecial("t.Holder", "<init>",
                            "(Ljava.lang.Object;)V").astore(1)
            m.aload(1).invokevirtual("t.Holder", "start", "()V")
            m.aload(1).invokevirtual("t.Holder", "join", "()V")
            m.aload(0).monitorenter()
            m.return_()
        with pytest.raises(DeadlockError) as excinfo:
            run_main(build_app(holder, main_c), "t.Main")
        assert excinfo.value.cycle, "cycle must name the wait-for edges"
        assert any("monitor" in resource
                   for _, resource, _ in excinfo.value.cycle)


class TestIllegalMonitorState:
    def _caught_app(self, body):
        """main() runs ``body`` in a try/catch for IMSE, prints 1 when
        the Java exception was caught."""
        c = ClassAssembler("t.Main")
        with c.method("main", "()V", static=True) as m:
            body(m)
            m.label("try_start")
            m.aload(0).monitorexit()
            m.label("try_end")
            m.getstatic("java.lang.System", "out")
            m.iconst(0)
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.goto("done")
            m.label("handler")
            m.pop()
            m.getstatic("java.lang.System", "out")
            m.iconst(1)
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.label("done")
            m.return_()
            m.try_catch("try_start", "try_end", "handler",
                        "java.lang.IllegalMonitorStateException")
        return build_app(c)

    def test_exit_without_enter_is_java_exception(self):
        def body(m):
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
        vm = run_main(self._caught_app(body), "t.Main")
        assert vm.console[-1] == "1"
        assert not vm.thread_deaths

    def test_exit_past_count_zero_is_java_exception(self):
        def body(m):
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.aload(0).monitorenter()
            m.aload(0).monitorexit()
        vm = run_main(self._caught_app(body), "t.Main")
        assert vm.console[-1] == "1"

    def test_non_owner_exit_under_scheduler(self):
        # the held-by-another-thread case, on the scheduler: must be
        # the Java exception, not a host crash or a silent release
        holder = ClassAssembler("t.Holder",
                                super_name="java.lang.Thread")
        holder.field("lock")
        with holder.method("<init>", "(Ljava.lang.Object;)V") as m:
            m.aload(0).aload(1).putfield("t.Holder", "lock")
            m.return_()
        with holder.method("run", "()V") as m:
            m.aload(0).getfield("t.Holder", "lock").monitorenter()
            m.iconst(0).istore(1)
            m.label("spin")
            m.iload(1).ldc(SPIN).if_icmpge("out")
            m.iinc(1, 1).goto("spin")
            m.label("out")
            m.aload(0).getfield("t.Holder", "lock").monitorexit()
            m.return_()
        c = ClassAssembler("t.Main")
        with c.method("main", "()V", static=True) as m:
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.new("t.Holder").dup().aload(0)
            m.invokespecial("t.Holder", "<init>",
                            "(Ljava.lang.Object;)V").astore(1)
            m.aload(1).invokevirtual("t.Holder", "start", "()V")
            m.label("try_start")
            m.aload(0).monitorexit()
            m.label("try_end")
            m.goto("join")
            m.label("handler")
            m.pop()
            m.getstatic("java.lang.System", "out")
            m.iconst(1)
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.label("join")
            m.aload(1).invokevirtual("t.Holder", "join", "()V")
            m.return_()
            m.try_catch("try_start", "try_end", "handler",
                        "java.lang.IllegalMonitorStateException")
        vm = run_main(build_app(holder, c), "t.Main",
                      config=VMConfig(cores=2))
        assert vm.console[-1] == "1"
        assert not vm.thread_deaths


def _join_cycle_app():
    """Two threads that join each other: a genuine wait-for cycle."""
    w = ClassAssembler("t.W", super_name="java.lang.Thread")
    w.field("peer")
    with w.method("<init>", "()V") as m:
        m.return_()
    with w.method("run", "()V") as m:
        m.aload(0).getfield("t.W", "peer").ifnull("done")
        m.aload(0).getfield("t.W", "peer")
        m.invokevirtual("t.W", "join", "()V")
        m.label("done")
        m.return_()
    c = ClassAssembler("t.Main")
    with c.method("main", "()V", static=True) as m:
        for slot in (0, 1):
            m.new("t.W").dup()
            m.invokespecial("t.W", "<init>", "()V").astore(slot)
        m.aload(0).aload(1).putfield("t.W", "peer")
        m.aload(1).aload(0).putfield("t.W", "peer")
        m.aload(0).invokevirtual("t.W", "start", "()V")
        m.aload(1).invokevirtual("t.W", "start", "()V")
        m.aload(0).invokevirtual("t.W", "join", "()V")
        m.return_()
    return build_app(w, c)


def _self_join_app():
    s = ClassAssembler("t.S", super_name="java.lang.Thread")
    with s.method("<init>", "()V") as m:
        m.return_()
    with s.method("run", "()V") as m:
        m.aload(0).invokevirtual("t.S", "join", "()V")
        m.return_()
    c = ClassAssembler("t.Main")
    with c.method("main", "()V", static=True) as m:
        m.new("t.S").dup()
        m.invokespecial("t.S", "<init>", "()V").astore(0)
        m.aload(0).invokevirtual("t.S", "start", "()V")
        m.aload(0).invokevirtual("t.S", "join", "()V")
        m.return_()
    return build_app(s, c)


class TestJoinDeadlocks:
    @pytest.mark.parametrize("cores", [1, 2])
    def test_self_join_is_structured(self, cores):
        with pytest.raises(DeadlockError) as excinfo:
            run_main(_self_join_app(), "t.Main",
                     config=VMConfig(cores=cores))
        cycle = excinfo.value.cycle
        assert len(cycle) == 1
        waiter, resource, holder = cycle[0]
        assert waiter == holder
        assert "join" in resource

    def test_sequential_join_of_running_reports_cycle(self):
        # seed code raised a bare "would deadlock" error with no
        # explanation of *which* threads form the cycle
        with pytest.raises(DeadlockError) as excinfo:
            run_main(_join_cycle_app(), "t.Main",
                     config=VMConfig(cores=1))
        cycle = excinfo.value.cycle
        assert len(cycle) == 2
        assert any("join" in resource for _, resource, _ in cycle)

    def test_scheduler_detects_join_cycle(self):
        with pytest.raises(DeadlockError) as excinfo:
            run_main(_join_cycle_app(), "t.Main",
                     config=VMConfig(cores=2))
        assert "wait-for cycle" in str(excinfo.value)
        cycle = excinfo.value.cycle
        assert len(cycle) >= 2
        # the cycle is closed: each holder is the next edge's waiter
        waiters = [edge[0] for edge in cycle]
        holders = [edge[2] for edge in cycle]
        assert sorted(waiters) == sorted(holders)


def _dying_thread_classes():
    d = ClassAssembler("t.D", super_name="java.lang.Thread")
    with d.method("<init>", "()V") as m:
        m.return_()
    with d.method("run", "()V") as m:
        m.iconst(1).iconst(0).idiv().pop()
        m.return_()
    c = ClassAssembler("t.Main")
    with c.method("main", "()V", static=True) as m:
        m.new("t.D").dup()
        m.invokespecial("t.D", "<init>", "()V").astore(0)
        m.aload(0).invokevirtual("t.D", "start", "()V")
        m.return_()  # never joined: the death happens in the drain
    return d, c


class _DyingWorkload(Workload):
    """A thread started, never joined, that dies of ArithmeticException
    during the drain phase.  Validation passes — only the death report
    machinery may flag the run."""

    name = "dying-thread-test"
    description = "test-only: drained thread dies uncaught"
    main_class = "t.Main"

    def build_classes(self):
        return build_app(*_dying_thread_classes())


@pytest.fixture()
def dying_registered():
    """Register the test-only workload for CLI lookup, then clean the
    global registry so other test modules see only the real suite."""
    fresh = _DyingWorkload.name not in _REGISTRY
    if fresh:
        register(_DyingWorkload)
    try:
        yield
    finally:
        if fresh:
            _REGISTRY.pop(_DyingWorkload.name, None)


class TestUncaughtThreadDeaths:
    @pytest.mark.parametrize("cores", [1, 2])
    def test_drained_death_is_recorded(self, cores):
        vm = run_main(build_app(*_dying_thread_classes()), "t.Main",
                      config=VMConfig(cores=cores))
        assert len(vm.thread_deaths) == 1
        assert "ArithmeticException" in vm.thread_deaths[0]
        assert vm.thread_deaths[0] in vm.console

    def test_death_is_counted_in_metrics(self):
        result = execute(_DyingWorkload(), RunConfig(
            agent=AgentSpec.none(),
            observability=ObservabilityConfig(metrics=True)))
        assert result.thread_deaths
        records = result.observability["metrics"]
        assert any(r.get("name") == "uncaught_thread_exceptions"
                   and r.get("value") == 1 for r in records)

    def test_table1_exits_nonzero_on_thread_death(self, capsys,
                                                  dying_registered):
        # seed code had no --workloads selector and silently dropped
        # thread deaths on the floor
        code = main(["table1", "--workloads", "dying-thread-test",
                     "--no-ledger"])
        capsys.readouterr()
        assert code == 1

    def test_table2_exits_nonzero_on_thread_death(self, capsys,
                                                  dying_registered):
        code = main(["table2", "--workloads", "dying-thread-test",
                     "--no-ledger"])
        capsys.readouterr()
        assert code == 1


class TestSchedulerDeterminism:
    def _run(self, cores, template=True):
        from repro.jit.policy import JitPolicy
        from repro.workloads import get_workload
        w = get_workload("fj-kmeans")
        config = RunConfig(agent=AgentSpec.none(), vm_config=VMConfig(
            jit_policy=JitPolicy(template_tier=template), cores=cores))
        return execute(w, config)

    def test_repeat_runs_identical(self):
        first = self._run(cores=4)
        second = self._run(cores=4)
        assert first.cycles == second.cycles
        assert first.core_clocks == second.core_clocks
        assert first.console == second.console

    def test_tiers_agree_at_every_core_count(self):
        for cores in (1, 2, 4):
            interp = self._run(cores, template=False)
            template = self._run(cores, template=True)
            assert interp.cycles == template.cycles
            assert interp.core_clocks == template.core_clocks
            assert interp.console == template.console

    @pytest.mark.parametrize("template", [False, True],
                             ids=["interp", "template"])
    def test_multiple_cores_are_effective(self, template):
        result = self._run(cores=4, template=template)
        busy = [clock for clock in result.core_clocks if clock > 0]
        assert len(busy) >= 2, result.core_clocks
