"""PCL: per-thread cycle counters and read perturbation."""

import pytest

from repro.errors import ReproError
from repro.jvm.costmodel import ChargeTag
from repro.launcher import create_vm


def _vm_with_thread():
    vm = create_vm()
    thread = vm.threads.create("t")
    vm.threads.current = thread
    return vm, thread


class TestTimestamps:
    def test_read_includes_its_own_cost(self):
        vm, thread = _vm_with_thread()
        first = vm.pcl.get_timestamp(thread)
        assert first == vm.cost_model.pcl_read

    def test_back_to_back_reads_differ_by_read_cost(self):
        vm, thread = _vm_with_thread()
        a = vm.pcl.get_timestamp(thread)
        b = vm.pcl.get_timestamp(thread)
        assert b - a == vm.cost_model.pcl_read

    def test_default_thread_is_current(self):
        vm, thread = _vm_with_thread()
        assert vm.pcl.get_timestamp() == thread.cycles_total

    def test_no_current_thread_is_an_error(self):
        vm = create_vm()
        with pytest.raises(ReproError):
            vm.pcl.get_timestamp()

    def test_counter_is_per_thread(self):
        vm, thread = _vm_with_thread()
        other = vm.threads.create("other")
        thread.charge(1000, ChargeTag.BYTECODE)
        assert vm.pcl.peek(other) == 0
        assert vm.pcl.peek(thread) == 1000

    def test_read_tagged_as_agent_by_default(self):
        vm, thread = _vm_with_thread()
        vm.pcl.get_timestamp(thread)
        assert thread.cycles_by_tag[ChargeTag.AGENT] == \
            vm.cost_model.pcl_read

    def test_custom_tag(self):
        vm, thread = _vm_with_thread()
        vm.pcl.get_timestamp(thread, tag=ChargeTag.NATIVE)
        assert thread.cycles_by_tag[ChargeTag.NATIVE] == \
            vm.cost_model.pcl_read

    def test_peek_is_free(self):
        vm, thread = _vm_with_thread()
        before = thread.cycles_total
        vm.pcl.peek(thread)
        assert thread.cycles_total == before

    def test_read_counter_statistics(self):
        vm, thread = _vm_with_thread()
        vm.pcl.get_timestamp(thread)
        vm.pcl.get_timestamp(thread)
        assert vm.pcl.reads == 2
