"""Service mode: warm-VM pool, admission control, loadgen, serve.

The load-bearing guarantees pinned here:

* a warm request skips class loading, verification, and template
  translation entirely (the counters are the witness) yet computes a
  console checksum identical to a cold run's — warmth changes *when*
  start-up work happens, never *what* the workload computes;
* per-request isolation: repeated warm requests are cycle-identical;
* admission control rejects with a structured 429-style error, a
  crashed worker is replaced and the next request succeeds, and a
  timed-out request retires its worker;
* the open-loop schedule and the outcome digest are pure functions of
  the seed — repeats agree;
* the Table I/II goldens stay byte-identical with the service
  machinery imported *and exercised* in-process.
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import AdmissionError, ServiceError
from repro.jvm.values import JArray, JObject
from repro.observability.metrics import MetricsRegistry
from repro.service import (
    RequestOutcome,
    ServiceConfig,
    VMPool,
    WarmVM,
    WorkloadRequest,
    run_cold,
)
from repro.service.loadgen import (
    LoadgenConfig,
    build_schedule,
    outcome_digest,
    run_loadgen,
)
from repro.service.snapshot import restore_statics, snapshot_statics
from repro.service.warm import MAX_PRIMING_ROUNDS

RESULTS = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def warm_db():
    """One pre-warmed db VM shared by the module (warm-up is the
    expensive part; requests are cheap)."""
    return WarmVM("db").warmup()


@pytest.fixture(scope="module")
def cold_db():
    return run_cold("db")


def _run_pool(config, scenario):
    """Start a pool, run ``scenario(pool)``, always stop; returns
    ``(scenario result, pool)``."""

    async def go():
        pool = VMPool(config, metrics=MetricsRegistry())
        await pool.start()
        try:
            result = await scenario(pool)
        finally:
            await pool.stop()
        return result, pool

    return asyncio.run(go())


class TestWarmVM:
    def test_warmup_settles(self, warm_db):
        assert warm_db.settled
        assert 1 <= warm_db.priming_rounds <= MAX_PRIMING_ROUNDS

    def test_warm_requests_skip_startup_work(self, warm_db):
        outcome = warm_db.run()
        assert outcome["ok"]
        assert outcome["warm"]
        assert outcome["classes_loaded"] == 0
        assert outcome["methods_verified"] == 0
        assert outcome["templates_translated"] == 0
        assert outcome["methods_compiled"] == 0

    def test_cold_request_pays_startup_work(self, cold_db):
        assert cold_db["ok"]
        assert not cold_db["warm"]
        assert cold_db["classes_loaded"] > 0
        assert cold_db["methods_verified"] > 0

    def test_warm_requests_are_cycle_identical(self, warm_db):
        outcomes = [warm_db.run() for _ in range(3)]
        assert len({o["cycles"] for o in outcomes}) == 1
        assert len({o["checksum"] for o in outcomes}) == 1

    def test_warm_checksum_matches_cold(self, warm_db, cold_db):
        """Warmth must not change what the workload computes."""
        assert warm_db.run()["checksum"] == cold_db["checksum"]

    def test_warm_run_is_cheaper_than_cold(self, warm_db, cold_db):
        assert warm_db.run()["cycles"] < cold_db["cycles"]

    def test_unwarmed_vm_refuses_requests(self):
        with pytest.raises(ServiceError, match="never warmed up"):
            WarmVM("db").run()


class TestStaticsSnapshot:
    def _string(self, text):
        return JObject(None, {}, 7, string_value=text)

    def test_aliasing_and_cycles_survive(self):
        shared = JObject(None, {"n": 1}, 1)
        shared.fields["self"] = shared          # cycle
        array = JArray("ref", 0, 2)
        array.data = [shared, shared]           # aliasing

        class Cls:
            name = "App"
            statics = {"a": shared, "b": shared, "arr": array}

        class Loader:
            def loaded_classes(self):
                return [Cls()]

        snap = snapshot_statics(Loader())
        a, b, arr = (snap["App"]["a"], snap["App"]["b"],
                     snap["App"]["arr"])
        assert a is b                           # aliasing preserved
        assert a is not shared                  # but it is a copy
        assert a.fields["self"] is a            # cycle closed
        assert arr.data[0] is a

    def test_interned_strings_keep_identity(self):
        text = self._string("hello")

        class Cls:
            name = "App"
            statics = {"s": text}

        class Loader:
            def loaded_classes(self):
                return [Cls()]

        snap = snapshot_statics(Loader())
        assert snap["App"]["s"] is text         # LDC binds identity

    def test_restore_mutates_dict_in_place(self):
        class Cls:
            name = "App"
            statics = {"x": 1}

        loader_cls = Cls()

        class Loader:
            def loaded_classes(self):
                return [loader_cls]

        loader = Loader()
        snap = snapshot_statics(loader)
        original_dict = loader_cls.statics
        loader_cls.statics["x"] = 99
        loader_cls.statics["junk"] = "leak"
        restore_statics(loader, snap)
        assert loader_cls.statics is original_dict  # same object
        assert loader_cls.statics == {"x": 1}


class TestPool:
    def test_warm_requests_through_pool(self):
        config = ServiceConfig(workers=1)

        async def scenario(pool):
            return [await pool.submit(WorkloadRequest("db",
                                                      request_id=i))
                    for i in range(2)]

        outcomes, pool = _run_pool(config, scenario)
        assert all(o.status == 200 and o.warm for o in outcomes)
        assert outcomes[0].cycles == outcomes[1].cycles
        assert all(o.classes_loaded == 0 for o in outcomes)
        stats = pool.stats()
        assert stats["service_vms_warmed"] == 1
        assert stats["service_requests_warm"] == 2

    def test_admission_rejects_past_queue_limit(self):
        config = ServiceConfig(workers=1, queue_limit=1, warm=False)

        async def scenario(pool):
            tasks = [asyncio.ensure_future(
                pool.submit(WorkloadRequest("db", request_id=i)))
                for i in range(6)]
            return await asyncio.gather(*tasks,
                                        return_exceptions=True)

        results, pool = _run_pool(config, scenario)
        rejections = [r for r in results
                      if isinstance(r, AdmissionError)]
        served = [r for r in results
                  if isinstance(r, RequestOutcome)]
        assert rejections and served
        assert all(exc.status == 429 for exc in rejections)
        assert all(exc.queue_limit == 1 and exc.queue_depth >= 1
                   for exc in rejections)
        stats = pool.stats()
        assert stats["service_requests_rejected"] == len(rejections)
        assert stats["service_requests_admitted"] == len(served)

    def test_crashed_worker_is_replaced(self):
        config = ServiceConfig(workers=1, warm=False,
                               allow_fault_injection=True)

        async def scenario(pool):
            crashed = await pool.submit(WorkloadRequest(
                "db", request_id=1, fault="host-error"))
            recovered = await pool.submit(WorkloadRequest(
                "db", request_id=2))
            return crashed, recovered

        (crashed, recovered), pool = _run_pool(config, scenario)
        assert crashed.status == 500
        assert "injected fault" in crashed.error
        assert recovered.status == 200
        assert recovered.worker != crashed.worker
        stats = pool.stats()
        assert stats["service_worker_crashes"] == 1
        assert stats["service_workers_replaced"] == 1

    def test_timeout_returns_504_and_retires_worker(self):
        config = ServiceConfig(workers=1, warm=False,
                               timeout_seconds=0.001)

        async def scenario(pool):
            return await pool.submit(WorkloadRequest("db",
                                                     request_id=9))

        outcome, pool = _run_pool(config, scenario)
        assert outcome.status == 504
        assert "timed out" in outcome.error
        stats = pool.stats()
        assert stats["service_requests_timeout"] == 1
        assert stats["service_workers_replaced"] == 1

    def test_unknown_workload_is_a_400(self):
        async def scenario(pool):
            return await pool.submit(WorkloadRequest("nope"))

        outcome, _ = _run_pool(ServiceConfig(workers=1, warm=False),
                               scenario)
        assert outcome.status == 400
        assert "unknown workload" in outcome.error
        assert "compress" in outcome.error   # valid names listed


class TestLoadgen:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        config = LoadgenConfig(workloads=["db", "jess"], rps=4.0,
                               duration=2.0, seed=42)
        first = build_schedule(config)
        second = build_schedule(config)
        assert first == second
        assert len(first) == 8
        assert [e["at"] for e in first] == sorted(
            e["at"] for e in first)
        assert {e["workload"] for e in first} <= {"db", "jess"}

    def test_closed_loop_has_no_schedule(self):
        with pytest.raises(ServiceError, match="closed-loop"):
            build_schedule(LoadgenConfig(rps=None))

    def test_seeded_runs_reproduce_the_outcome_digest(self):
        config = LoadgenConfig(workloads=["db"], rps=6.0,
                               duration=1.0, seed=42, workers=2,
                               warm=False)
        first = run_loadgen(config)
        second = run_loadgen(config)
        assert first["outcome_digest"] == second["outcome_digest"]
        assert first["requests"]["issued"] == 6
        assert first["requests"]["completed"] == 6
        assert not first["interrupted"]
        assert first["latency_ms"]["p50"] <= first["latency_ms"]["p95"]
        assert first["mode"] == "open"

    def test_digest_covers_simulated_outcomes_only(self):
        rows = [{"id": 1, "workload": "db", "cycles": 10,
                 "checksum": "aa", "status": 200,
                 "latency_ms": 1.0},
                {"id": 0, "workload": "db", "cycles": 10,
                 "checksum": "aa", "status": 200,
                 "latency_ms": 99.0}]
        reordered = list(reversed(rows))
        slower = [dict(row, latency_ms=row["latency_ms"] * 7)
                  for row in rows]
        assert outcome_digest(rows) == outcome_digest(reordered)
        assert outcome_digest(rows) == outcome_digest(slower)


class TestGoldenParityWithService:
    """The service subsystem must not perturb batch measurements —
    even after warm VMs ran in this very process."""

    def test_tables_match_goldens_after_service_use(self, warm_db,
                                                    capsys):
        assert warm_db.run()["ok"]       # service machinery exercised
        assert main(["table1"]) == 0
        table1 = capsys.readouterr().out
        assert table1 == (RESULTS / "table1.txt").read_text()
        assert main(["table2"]) == 0
        table2 = capsys.readouterr().out
        assert table2 == (RESULTS / "table2.txt").read_text()


class TestLoadgenReport:
    def _manifest(self, **loadgen_extras):
        doc = {
            "mode": "open", "workloads": ["db"], "seed": 42,
            "offered_rps": 10.0, "achieved_rps": 9.5,
            "requests": {"issued": 20, "completed": 19,
                         "rejected": 1, "timeout": 0, "failed": 0},
            "latency_ms": {"count": 19, "mean": 5.0, "p50": 4.0,
                           "p95": 9.0, "p99": 9.9, "max": 10.0},
            "latency_histogram": {
                "bounds_ms": [0.5, 1, 2, 4, 8, 16],
                "counts": [0, 0, 3, 6, 8, 2, 0]},
            "timeline": [
                {"second": 0, "offered": 10, "completed": 9},
                {"second": 1, "offered": 10, "completed": 10}],
            "outcome_digest": "abc123", "interrupted": False,
        }
        doc.update(loadgen_extras)
        return {"run_id": "r1", "command": "loadgen",
                "provenance": {}, "config": {},
                "outcome": {"loadgen": doc}}

    def test_report_renders_loadgen_panels(self):
        from repro.observability.report import render_report

        page = render_report(self._manifest())
        assert "Load generation" in page
        assert "request latency [ms]" in page
        assert "throughput over time" in page
        assert "offered rps" in page
        assert "p95 ms" in page
        assert "cold-start" not in page

    def test_report_renders_cold_baseline_table(self):
        page_doc = self._manifest(cold_baseline={
            "latency_ms": {"count": 19, "mean": 50.0, "p50": 40.0,
                           "p95": 90.0, "p99": 99.0, "max": 100.0},
            "achieved_rps": 4.0,
            "requests": {"issued": 20, "completed": 19},
            "outcome_digest": "def456"})
        from repro.observability.report import render_report

        page = render_report(page_doc)
        assert "cold-start baseline" in page
        assert "achieved rps" in page

    def test_non_loadgen_manifest_has_no_loadgen_section(self):
        from repro.observability.report import render_report

        page = render_report({"run_id": "r2", "command": "profile",
                              "provenance": {}, "config": {},
                              "outcome": {}})
        assert "Load generation" not in page


class TestServiceCLI:
    def test_loadgen_records_manifest(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        assert main(["loadgen", "--rps", "4", "--duration", "0.5",
                     "--seed", "1", "--workloads", "db",
                     "--workers", "1",
                     "--ledger-dir", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out
        manifests = list(ledger.glob("*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["command"] == "loadgen"
        assert manifest["config"]["rps"] == 4.0
        assert manifest["config"]["cores"] == 1
        assert manifest["config"]["tier"] == "template"
        doc = manifest["outcome"]["loadgen"]
        assert doc["outcome_digest"]
        assert doc["requests"]["issued"] == 2

    @pytest.mark.parametrize("argv", [
        ["loadgen", "--rps", "0", "--duration", "1"],
        ["loadgen", "--rps", "-3", "--duration", "1"],
        ["loadgen", "--rps", "5", "--duration", "0"],
        ["loadgen", "--rps", "5", "--duration", "-1"],
    ])
    def test_loadgen_rejects_nonpositive_rate_and_duration(
            self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "positive" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["table1", "--workloads", "bogus"],
        ["table2", "--workloads", "db", "bogus"],
        ["loadgen", "--rps", "1", "--duration", "1",
         "--workloads", "bogus"],
        ["serve", "--port", "1", "--preheat", "bogus"],
    ])
    def test_unknown_workloads_list_valid_families(self, argv,
                                                   capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "valid" in err
        assert "compress" in err

    def test_serve_needs_an_endpoint(self, capsys):
        assert main(["serve"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_serve_refuses_busy_socket_path(self, tmp_path, capsys):
        busy = tmp_path / "repro.sock"
        busy.touch()
        assert main(["serve", "--socket", str(busy)]) == 2
        err = capsys.readouterr().err
        assert "already exists" in err

    def test_serve_refuses_busy_port(self, capsys):
        import socket

        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            port = holder.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
        err = capsys.readouterr().err
        assert "already in use" in err

    def test_interrupted_loadgen_writes_partial_manifest(
            self, tmp_path, monkeypatch):
        async def interrupted_drive(pool, config, records):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.service.loadgen._drive_open_loop",
                            interrupted_drive)
        ledger = tmp_path / "ledger"
        status = main(["loadgen", "--rps", "4", "--duration", "0.5",
                       "--workers", "1",
                       "--ledger-dir", str(ledger)])
        assert status == 130
        manifests = list(ledger.glob("*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["interrupted"] is True
        assert manifest["outcome"]["loadgen"]["interrupted"] is True
