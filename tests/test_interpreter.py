"""Interpreter semantics: arithmetic, control flow, objects, arrays,
exceptions, dispatch, monitors."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.errors import (
    DeadlockError,
    NoSuchMethodError,
    StackOverflowSimError,
)

from helpers import build_app, expr_main, run_expr, run_main


class TestArithmetic:
    @pytest.mark.parametrize("a,b,op,expected", [
        (7, 5, "iadd", 12),
        (7, 5, "isub", 2),
        (7, 5, "imul", 35),
        (7, 5, "idiv", 1),
        (7, 5, "irem", 2),
        (-7, 5, "idiv", -1),     # Java truncates toward zero
        (-7, 5, "irem", -2),
        (7, -5, "idiv", -1),
        (7, -5, "irem", 2),
        (6, 2, "ishl", 24),
        (-8, 1, "ishr", -4),
        (12, 10, "iand", 8),
        (12, 10, "ior", 14),
        (12, 10, "ixor", 6),
    ])
    def test_binary_ops(self, a, b, op, expected):
        def body(m):
            m.iconst(a).iconst(b)
            getattr(m, op)()

        result, _ = run_expr(body)
        assert result == expected

    def test_int_overflow_wraps(self):
        result, _ = run_expr(
            lambda m: m.ldc(2147483647).iconst(1).iadd())
        assert result == -2147483648

    def test_imul_wraps(self):
        result, _ = run_expr(
            lambda m: m.ldc(65536).ldc(65536).imul())
        assert result == 0

    def test_iushr_on_negative(self):
        result, _ = run_expr(lambda m: m.iconst(-1).iconst(28).iushr())
        assert result == 15

    def test_ineg(self):
        result, _ = run_expr(lambda m: m.iconst(5).ineg())
        assert result == -5

    def test_iinc(self):
        def body(m):
            m.iconst(10).istore(0)
            m.iinc(0, -3)
            m.iload(0)

        result, _ = run_expr(body)
        assert result == 7

    def test_float_ops_and_conversions(self):
        def body(m):
            m.ldc(7.0).ldc(2.0).fdiv()   # 3.5
            m.ldc(2.0).imul()            # 7.0
            m.f2i()                      # 7

        result, _ = run_expr(body)
        assert result == 7

    def test_fcmp(self):
        result, _ = run_expr(lambda m: m.ldc(1.5).ldc(2.5).fcmp())
        assert result == -1
        result, _ = run_expr(lambda m: m.ldc(2.5).ldc(2.5).fcmp())
        assert result == 0


class TestControlFlow:
    def test_loop_sums(self):
        def body(m):
            m.iconst(0).istore(0)
            m.iconst(1).istore(1)
            m.label("top")
            m.iload(1).iconst(100).if_icmpgt("end")
            m.iload(0).iload(1).iadd().istore(0)
            m.iinc(1, 1).goto("top")
            m.label("end")
            m.iload(0)

        result, _ = run_expr(body)
        assert result == 5050

    @pytest.mark.parametrize("op,value,taken", [
        ("ifeq", 0, True), ("ifeq", 1, False),
        ("ifne", 0, False), ("ifne", 2, True),
        ("iflt", -1, True), ("iflt", 0, False),
        ("ifle", 0, True), ("ifgt", 1, True),
        ("ifge", 0, True), ("ifge", -1, False),
    ])
    def test_unary_branches(self, op, value, taken):
        def body(m):
            m.iconst(value)
            getattr(m, op)("yes")
            m.iconst(0).goto("end")
            m.label("yes").iconst(1)
            m.label("end")

        result, _ = run_expr(body)
        assert result == (1 if taken else 0)

    def test_null_branches(self):
        def body(m):
            m.aconst_null().ifnull("yes")
            m.iconst(0).goto("end")
            m.label("yes").iconst(1)
            m.label("end")

        result, _ = run_expr(body)
        assert result == 1

    def test_reference_equality_branch(self):
        def body(m):
            m.ldc("x").ldc("x").if_acmpeq("same")  # both interned
            m.iconst(0).goto("end")
            m.label("same").iconst(1)
            m.label("end")

        result, _ = run_expr(body)
        assert result == 1


class TestStackOps:
    def test_dup_swap_pop(self):
        def body(m):
            m.iconst(3).dup().iadd()        # 6
            m.iconst(10).swap().isub()      # 10 - 6
            m.iconst(99).pop()

        result, _ = run_expr(body)
        assert result == 4

    def test_dup_x1(self):
        def body(m):
            m.iconst(2).iconst(5).dup_x1()  # 5 2 5
            m.iadd().iadd()                 # 12

        result, _ = run_expr(body)
        assert result == 12


class TestObjectsAndDispatch:
    def _animal_classes(self):
        base = ClassAssembler("zoo.Animal")
        with base.method("<init>", "()V") as m:
            m.return_()
        with base.method("legs", "()I") as m:
            m.iconst(4).ireturn()
        with base.method("doubledLegs", "()I") as m:
            m.aload(0).invokevirtual("zoo.Animal", "legs", "()I")
            m.iconst(2).imul().ireturn()
        bird = ClassAssembler("zoo.Bird", super_name="zoo.Animal")
        with bird.method("legs", "()I") as m:
            m.iconst(2).ireturn()
        return base, bird

    def test_virtual_dispatch_uses_receiver_class(self):
        base, bird = self._animal_classes()

        def body(m):
            m.new("zoo.Bird").dup()
            m.invokespecial("zoo.Bird", "<init>", "()V")
            m.invokevirtual("zoo.Animal", "legs", "()I")

        main = expr_main("zoo.Main", body)
        vm = run_main(build_app(base, bird, main), "zoo.Main")
        assert vm.console[-1] == "2"

    def test_virtual_recursion_through_super_method(self):
        base, bird = self._animal_classes()

        def body(m):
            m.new("zoo.Bird").dup()
            m.invokespecial("zoo.Bird", "<init>", "()V")
            m.invokevirtual("zoo.Animal", "doubledLegs", "()I")

        main = expr_main("zoo.Main2", body)
        vm = run_main(build_app(base, bird, main), "zoo.Main2")
        # doubledLegs is inherited; its self-call dispatches to Bird
        assert vm.console[-1] == "4"

    def test_fields_and_constructor_args(self):
        c = ClassAssembler("pt.Point")
        c.field("x", default=0)
        c.field("y", default=0)
        with c.method("<init>", "(II)V") as m:
            m.aload(0).iload(1).putfield("pt.Point", "x")
            m.aload(0).iload(2).putfield("pt.Point", "y")
            m.return_()
        with c.method("manhattan", "()I") as m:
            m.aload(0).getfield("pt.Point", "x")
            m.aload(0).getfield("pt.Point", "y")
            m.iadd().ireturn()

        def body(m):
            m.new("pt.Point").dup().iconst(3).iconst(9)
            m.invokespecial("pt.Point", "<init>", "(II)V")
            m.invokevirtual("pt.Point", "manhattan", "()I")

        vm = run_main(build_app(c, expr_main("pt.Main", body)),
                      "pt.Main")
        assert vm.console[-1] == "12"

    def test_static_fields_and_clinit(self):
        c = ClassAssembler("st.Holder")
        c.field("value", static=True, default=0)
        with c.method("<clinit>", "()V", static=True) as m:
            m.iconst(42).putstatic("st.Holder", "value")
            m.return_()

        def body(m):
            m.getstatic("st.Holder", "value")

        vm = run_main(build_app(c, expr_main("st.Main", body)),
                      "st.Main")
        assert vm.console[-1] == "42"

    def test_instanceof_and_checkcast(self):
        base, bird = self._animal_classes()

        def body(m):
            m.new("zoo.Bird").dup()
            m.invokespecial("zoo.Bird", "<init>", "()V")
            m.astore(0)
            m.aload(0).instanceof("zoo.Animal")
            m.aload(0).instanceof("java.lang.String")
            m.iconst(10).imul().iadd()
            m.aload(0).checkcast("zoo.Animal").pop()

        main = expr_main("zoo.Main3", body)
        vm = run_main(build_app(base, bird, main), "zoo.Main3")
        assert vm.console[-1] == "1"

    def test_missing_method_is_linkage_error(self):
        def body(m):
            m.invokestatic("nowhere.C", "f", "()I")

        c = ClassAssembler("nowhere.C")
        with c.method("g", "()V", static=True) as m:
            m.return_()
        with pytest.raises(NoSuchMethodError):
            run_main(build_app(c, expr_main("nw.Main", body)),
                     "nw.Main")


class TestArrays:
    def test_store_load_length(self):
        def body(m):
            m.iconst(5).newarray(ArrayKind.INT).astore(0)
            m.aload(0).iconst(2).iconst(77).iastore()
            m.aload(0).iconst(2).iaload()
            m.aload(0).arraylength().iadd()

        result, _ = run_expr(body)
        assert result == 82

    def test_byte_array_wraps_to_signed(self):
        def body(m):
            m.iconst(1).newarray(ArrayKind.BYTE).astore(0)
            m.aload(0).iconst(0).iconst(200).iastore()
            m.aload(0).iconst(0).iaload()

        result, _ = run_expr(body)
        assert result == -56

    def test_char_array_wraps_unsigned(self):
        def body(m):
            m.iconst(1).newarray(ArrayKind.CHAR).astore(0)
            m.aload(0).iconst(0).iconst(-1).iastore()
            m.aload(0).iconst(0).iaload()

        result, _ = run_expr(body)
        assert result == 0xFFFF

    def test_ref_arrays(self):
        def body(m):
            m.iconst(2).newarray(ArrayKind.REF).astore(0)
            m.aload(0).iconst(0).ldc("hello").aastore()
            m.aload(0).iconst(0).aaload()
            m.invokevirtual("java.lang.String", "length", "()I")

        result, _ = run_expr(body)
        assert result == 5



def catch_main(class_name, try_body, handler_body, catch_type,
               extra_classes=()):
    """Build a main that prints attempt()I, where attempt runs
    ``try_body`` under a handler built by ``handler_body`` (entered
    with just the thrown object on the stack, per JVM semantics)."""
    c = ClassAssembler(class_name)
    with c.method("attempt", "()I", static=True) as m:
        m.label("try")
        try_body(m)
        m.label("try_end")
        m.goto("no_exc")
        m.label("handler")
        handler_body(m)
        m.ireturn()
        m.label("no_exc")
        m.iconst(0).ireturn()
        m.try_catch("try", "try_end", "handler", catch_type)

    def body(m):
        m.invokestatic(class_name, "attempt", "()I")

    main = expr_main(class_name + "M", body)
    vm = run_main(build_app(c, *extra_classes, main),
                  class_name + "M")
    return vm


class TestExceptions:
    def _thrower(self):
        c = ClassAssembler("ex.T")
        with c.method("boom", "()V", static=True) as m:
            m.new("java.lang.RuntimeException").dup()
            m.ldc("kaboom")
            m.invokespecial("java.lang.RuntimeException", "<init>",
                            "(Ljava.lang.String;)V")
            m.athrow()
        return c

    def test_catch_by_type(self):
        vm = catch_main(
            "ex.A",
            lambda m: m.invokestatic("ex.T", "boom", "()V"),
            lambda m: m.pop().iconst(1),
            "java.lang.RuntimeException",
            extra_classes=(self._thrower(),))
        assert vm.console[-1] == "1"

    def test_supertype_catches_subtype(self):
        vm = catch_main(
            "ex.B",
            lambda m: m.invokestatic("ex.T", "boom", "()V"),
            lambda m: m.pop().iconst(1),
            "java.lang.Throwable",
            extra_classes=(self._thrower(),))
        assert vm.console[-1] == "1"

    def test_unrelated_type_does_not_catch(self):
        vm = catch_main(
            "ex.C",
            lambda m: m.invokestatic("ex.T", "boom", "()V"),
            lambda m: m.pop().iconst(1),
            "java.io.IOException",
            extra_classes=(self._thrower(),))
        # uncaught: thread records the exception, main prints nothing
        thread = vm.threads.all_threads[0]
        assert thread.uncaught_exception is not None
        assert thread.uncaught_exception.class_name == \
            "java.lang.RuntimeException"
        assert any("kaboom" in line for line in vm.console)

    def test_exception_unwinds_multiple_frames(self):
        c = self._thrower()
        with c.method("level1", "()V", static=True) as m:
            m.invokestatic("ex.T", "boom", "()V")
            m.return_()
        with c.method("level2", "()V", static=True) as m:
            m.invokestatic("ex.T", "level1", "()V")
            m.return_()

        def handler(m):
            m.invokevirtual("java.lang.Throwable", "getMessage",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.lang.String", "length", "()I")

        vm = catch_main(
            "ex.D",
            lambda m: m.invokestatic("ex.T", "level2", "()V"),
            handler,
            None,
            extra_classes=(c,))
        assert vm.console[-1] == str(len("kaboom"))

    @pytest.mark.parametrize("body_builder,exc_name", [
        (lambda m: m.iconst(1).iconst(0).idiv(),
         "java.lang.ArithmeticException"),
        (lambda m: m.aconst_null().arraylength(),
         "java.lang.NullPointerException"),
        (lambda m: (m.iconst(1).newarray(ArrayKind.INT)
                    .iconst(5).iaload()),
         "java.lang.ArrayIndexOutOfBoundsException"),
        (lambda m: m.iconst(-1).newarray(ArrayKind.INT).arraylength(),
         "java.lang.NegativeArraySizeException"),
        (lambda m: (m.ldc("s").checkcast("java.lang.Thread")
                    .arraylength()),
         "java.lang.ClassCastException"),
    ])
    def test_vm_synthesized_exceptions(self, body_builder, exc_name):
        vm = catch_main(
            "vmx." + exc_name.rsplit(".", 1)[-1],
            lambda m: (body_builder(m), m.pop())[0],
            lambda m: m.instanceof(exc_name),
            None)
        assert vm.console[-1] == "1"

    def test_finally_runs_on_exception_path(self):
        c = ClassAssembler("fin.C")
        c.field("cleanups", static=True, default=0)
        with c.method("work", "()V", static=True) as m:
            m.label("try")
            m.aconst_null().arraylength().pop()
            m.label("try_end")
            m.return_()
            m.label("finally")
            m.getstatic("fin.C", "cleanups").iconst(1).iadd()
            m.putstatic("fin.C", "cleanups")
            m.athrow()
            m.try_catch("try", "try_end", "finally", None)

        vm = catch_main(
            "fin.X",
            lambda m: m.invokestatic("fin.C", "work", "()V"),
            lambda m: m.pop().getstatic("fin.C", "cleanups"),
            None,
            extra_classes=(c,))
        assert vm.console[-1] == "1"


class TestMonitors:
    def test_uncontended_monitor(self):
        def body(m):
            m.ldc("lock").astore(0)
            m.aload(0).monitorenter()
            m.aload(0).monitorenter()   # recursive
            m.aload(0).monitorexit()
            m.aload(0).monitorexit()
            m.iconst(1)

        result, _ = run_expr(body)
        assert result == 1

    def test_exit_without_enter(self):
        vm = catch_main(
            "mon.X",
            lambda m: m.ldc("lock").monitorexit(),
            lambda m: m.instanceof(
                "java.lang.IllegalMonitorStateException"),
            None)
        assert vm.console[-1] == "1"


class TestRecursionLimits:
    def test_deep_java_recursion_is_bounded(self):
        c = ClassAssembler("rec.C")
        with c.method("down", "(I)I", static=True) as m:
            m.iload(0).ifle("base")
            m.iload(0).iconst(1).isub()
            m.invokestatic("rec.C", "down", "(I)I")
            m.ireturn()
            m.label("base")
            m.iconst(0).ireturn()

        def body(m):
            m.ldc(1_000_000).invokestatic("rec.C", "down", "(I)I")

        with pytest.raises(StackOverflowSimError):
            run_main(build_app(c, expr_main("rec.Main", body)),
                     "rec.Main")

    def test_moderate_recursion_ok(self):
        c = ClassAssembler("rec.D")
        with c.method("down", "(I)I", static=True) as m:
            m.iload(0).ifle("base")
            m.iload(0).iconst(1).isub()
            m.invokestatic("rec.D", "down", "(I)I")
            m.iconst(1).iadd().ireturn()
            m.label("base")
            m.iconst(0).ireturn()

        def body(m):
            m.ldc(500).invokestatic("rec.D", "down", "(I)I")

        vm = run_main(build_app(c, expr_main("rec.Main2", body)),
                      "rec.Main2")
        assert vm.console[-1] == "500"


class TestAccounting:
    def test_cycles_are_deterministic(self):
        results = []
        for _ in range(2):
            _, vm = run_expr(
                lambda m: m.iconst(2).iconst(3).imul())
            results.append(vm.total_cycles)
        assert results[0] == results[1]

    def test_cycles_monotone_with_work(self):
        def small(m):
            m.iconst(1)

        def big(m):
            m.iconst(0).istore(0)
            m.label("t")
            m.iload(0).ldc(1000).if_icmpge("e")
            m.iinc(0, 1).goto("t")
            m.label("e")
            m.iload(0)

        _, vm_small = run_expr(small)
        _, vm_big = run_expr(big)
        assert vm_big.total_cycles > vm_small.total_cycles

    def test_ground_truth_tags_partition_total(self):
        _, vm = run_expr(lambda m: m.iconst(1))
        truth = vm.ground_truth()
        assert sum(truth.values()) == vm.total_cycles
