"""On-stack replacement edge cases.

The happy path (hot loop enters its template mid-method, finishes
there) is pinned by the parity and fuzz suites; these tests target the
corners where OSR interacts with the rest of the tier machinery:
live exception handlers, the deopt-disable threshold racing re-entry,
preemptive scheduling under ``--cores N``, and invalidated templates.
"""

from repro.bytecode.assembler import ClassAssembler
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.launcher import create_vm

from helpers import build_app, expr_main, run_main

#: Low thresholds so tiny test programs compile (and OSR) quickly.
HOT = dict(invoke_threshold=5, backedge_threshold=50)


def _run_tiered(archive, main_class, tier: bool, cores: int = 1,
                **policy_kwargs):
    kwargs = dict(HOT)
    kwargs.update(policy_kwargs)
    config = VMConfig(jit_policy=JitPolicy(template_tier=tier,
                                           **kwargs), cores=cores)
    return run_main(archive, main_class, vm=create_vm(config))


def _observables(vm):
    return {
        "console": list(vm.console),
        "total_cycles": vm.total_cycles,
        "ground_truth": vm.ground_truth(),
        "instructions_retired": vm.instructions_retired,
        "ic_hits": vm.ic_hits,
        "ic_misses": vm.ic_misses,
        "method_invocations": vm.method_invocations,
    }


def _assert_parity(build, main_class, cores: int = 1, **policy_kwargs):
    """Both tiers must agree on every simulated observable; returns the
    template-tier VM for OSR-specific assertions."""
    templated = _run_tiered(build(), main_class, True, cores=cores,
                            **policy_kwargs)
    interp = _run_tiered(build(), main_class, False, cores=cores,
                         **policy_kwargs)
    assert _observables(templated) == _observables(interp)
    assert interp.jit.osr_entries == 0
    return templated


def _sched_app():
    def build():
        c = ClassAssembler("osr.Sched")
        with c.method("work", "(I)I", static=True) as m:
            m.iload(0).iconst(3).imul().iconst(1).iadd().ireturn()

        def body(m):
            m.iconst(0).istore(0)
            m.iconst(0).istore(1)
            m.label("t")
            m.iload(1).ldc(300).if_icmpge("e")
            m.iload(0).invokestatic("osr.Sched", "work", "(I)I")
            m.istore(0)
            m.iinc(1, 1).goto("t")
            m.label("e")
            m.iload(0)

        return build_app(c, expr_main("osr.SchedM", body))

    return build


class TestOsrEdgeCases:
    def test_osr_with_live_exception_handler(self):
        # The loop sits inside a try block; OSR transfers the frame
        # mid-loop, then a division throws from *templated* code and
        # must land on the handler of the very frame OSR entered.
        def build():
            c = ClassAssembler("osr.Try")
            with c.method("loop", "()I", static=True) as m:
                m.iconst(0).istore(0)        # acc
                m.iconst(0).istore(1)        # i
                m.label("try")
                m.label("t")
                m.iload(1).ldc(200).if_icmpge("e")
                # 100 / (199 - i): ArithmeticException at i == 199
                m.ldc(100).ldc(199).iload(1).isub().idiv()
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.label("try_end")
                m.iload(0).ireturn()
                m.label("handler")
                m.pop().iload(0).iconst(7).iadd().ireturn()
                m.try_catch("try", "try_end", "handler",
                            "java.lang.ArithmeticException")

            def body(m):
                m.invokestatic("osr.Try", "loop", "()I")

            return build_app(c, expr_main("osr.TryM", body))

        vm = _assert_parity(build, "osr.TryM")
        assert vm.jit.osr_entries >= 1
        expected = sum(100 // (199 - i) for i in range(199)) + 7
        assert vm.console[-1] == str(expected)

    def test_osr_racing_deopt_disable_threshold(self):
        # Cold static reads activate at i == 60 and i == 70 — both
        # *after* translation at backedge 50, so each OSR re-entry runs
        # into a fresh cold site.  With the disable threshold at 2 the
        # second deopt invalidates the template while its loop is still
        # live; invalidation clears osr_map, so the backedge that fires
        # immediately afterwards must not attempt another entry.
        def build():
            c = ClassAssembler("osr.Race")
            c.field("a", static=True, default=1000)
            c.field("b", static=True, default=2000)

            def body(m):
                m.iconst(0).istore(0)        # acc
                m.iconst(0).istore(1)        # i
                m.label("t")
                m.iload(1).ldc(100).if_icmpge("e")
                m.iload(1).ldc(60).if_icmpne("not_a")
                m.getstatic("osr.Race", "a")
                m.iload(0).iadd().istore(0)
                m.label("not_a")
                m.iload(1).ldc(70).if_icmpne("not_b")
                m.getstatic("osr.Race", "b")
                m.iload(0).iadd().istore(0)
                m.label("not_b")
                m.iload(0).iload(1).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("osr.RaceM", body))

        vm = _assert_parity(build, "osr.RaceM",
                            template_deopt_disable_threshold=2)
        assert vm.jit.osr_entries == 2
        assert vm.jit.template_deopts.get("cold_site") == 2
        assert vm.jit.code_cache.invalidated == 1
        main = vm.loader.loaded_class("osr.RaceM").find_declared(
            "main", "()V")
        assert main.template is None
        assert main.osr_map is None
        # OSR entered twice but the counter stopped with the template
        assert main.osr_entry_count == 2

    def test_osr_under_preemptive_scheduler(self):
        # --cores N runs the deterministic preemptive scheduler, whose
        # quantum checks share the backedge safepoint with the OSR
        # trigger; both tiers must make identical preemption decisions
        # with OSR transferring the frame between them.
        vm = _assert_parity(_sched_app(), "osr.SchedM", cores=2)
        assert vm.jit.osr_entries >= 1

    def test_no_osr_into_invalidated_template(self):
        # With the disable threshold at 1, the first cold-site deopt
        # (right after the only OSR entry) invalidates the template
        # mid-loop.  The ~40 backedges that fire afterwards all see the
        # cleared osr_map and must interpret to completion — exactly
        # one entry, ever.
        def build():
            c = ClassAssembler("osr.Inv")
            c.field("a", static=True, default=1000)

            def body(m):
                m.iconst(0).istore(0)        # acc
                m.iconst(0).istore(1)        # i
                m.label("t")
                m.iload(1).ldc(100).if_icmpge("e")
                m.iload(1).ldc(60).if_icmpne("skip")
                m.getstatic("osr.Inv", "a")
                m.iload(0).iadd().istore(0)
                m.label("skip")
                m.iload(0).iload(1).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("osr.InvM", body))

        vm = _assert_parity(build, "osr.InvM",
                            template_deopt_disable_threshold=1)
        assert vm.jit.osr_entries == 1
        assert vm.jit.code_cache.invalidated == 1
        main = vm.loader.loaded_class("osr.InvM").find_declared(
            "main", "()V")
        assert main.template is None
        assert main.osr_map is None
        expected = 0
        for i in range(100):
            if i == 60:
                expected += 1000
            expected += i
        assert vm.console[-1] == str(expected)

    def test_invalidation_clears_osr_eligibility(self):
        # unit-level: install publishes the translator's osr_map on the
        # method; invalidate withdraws it with the template, so the
        # interpreter's backedge guard (method.osr_map is not None)
        # can never route a frame into dropped code
        vm = _run_tiered(_sched_app()(), "osr.SchedM", True)
        main = vm.loader.loaded_class("osr.SchedM").find_declared(
            "main", "()V")
        assert main.template is not None
        assert main.osr_map  # loop header -> expected stack depth
        vm.jit.code_cache.invalidate(main, "test")
        assert main.template is None
        assert main.osr_map is None
