"""JIT compilation model: thresholds, cost switching, the JVMTI veto."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig

from helpers import build_app, expr_main, run_main


def _hot_program(calls: int):
    c = ClassAssembler("jit.Hot")
    with c.method("work", "(I)I", static=True) as m:
        m.iload(0).iconst(3).imul().iconst(1).iadd().ireturn()

    def body(m):
        m.iconst(0).istore(0)
        m.iconst(0).istore(1)
        m.label("t")
        m.iload(1).ldc(calls).if_icmpge("e")
        m.iload(0).invokestatic("jit.Hot", "work", "(I)I").istore(0)
        m.iinc(1, 1).goto("t")
        m.label("e")
        m.iload(0)

    return build_app(c, expr_main("jit.Main", body))


def _run(calls, policy=None):
    config = VMConfig(jit_policy=policy or JitPolicy())
    return run_main(_hot_program(calls), "jit.Main", config=config)


class TestCompilationDecisions:
    def test_hot_method_compiles(self):
        vm = _run(500)
        compiled = {m.qualified_name for m in vm.jit.methods_compiled}
        assert "jit.Hot.work(I)I" in compiled

    def test_cold_method_stays_interpreted(self):
        vm = _run(5)
        compiled = {m.qualified_name for m in vm.jit.methods_compiled}
        assert "jit.Hot.work(I)I" not in compiled

    def test_invoke_threshold_respected(self):
        policy = JitPolicy(invoke_threshold=1000,
                           backedge_threshold=10**9)
        vm = _run(500, policy)
        compiled = {m.qualified_name for m in vm.jit.methods_compiled}
        assert "jit.Hot.work(I)I" not in compiled

    def test_backedge_compilation_osr(self):
        # a method entered once with a long loop must still compile
        c = ClassAssembler("jit.Loop")
        with c.method("spin", "()I", static=True) as m:
            m.iconst(0).istore(0)
            m.label("t")
            m.iload(0).ldc(5000).if_icmpge("e")
            m.iinc(0, 1).goto("t")
            m.label("e")
            m.iload(0).ireturn()

        def body(m):
            m.invokestatic("jit.Loop", "spin", "()I")

        vm = run_main(build_app(c, expr_main("jit.Main2", body)),
                      "jit.Main2")
        compiled = {m.qualified_name for m in vm.jit.methods_compiled}
        assert "jit.Loop.spin()I" in compiled

    def test_disabled_policy_never_compiles(self):
        vm = _run(500, JitPolicy(enabled=False))
        assert vm.jit.compile_count == 0

    def test_compilation_charges_vm_cycles(self):
        fast = _run(500)
        assert fast.ground_truth()["vm"] > _run(5).ground_truth()["vm"]


class TestPerformanceEffect:
    def test_jit_speeds_up_hot_code(self):
        # long enough that steady state dominates warm-up and loading
        with_jit = _run(20000).total_cycles
        without = _run(20000, JitPolicy(enabled=False)).total_cycles
        assert without > with_jit * 3

    def test_compiled_costs_cheaper_per_instruction(self):
        vm = _run(500)
        method = vm.loader.loaded_class("jit.Hot").find_declared(
            "work", "(I)I")
        assert method.compiled
        assert sum(method.active_costs) < sum(method.interp_cost_list)
        assert method.active_costs == method.compiled_cost_list


class TestJvmtiVeto:
    def test_method_event_capability_disables_jit(self):
        from repro.agents.spa import SPA

        vm = run_main(_hot_program(500), "jit.Main",
                      agents=[SPA()])
        assert vm.jit.vetoed
        assert vm.jit.compile_count == 0

    def test_ipa_does_not_veto(self):
        from repro.agents.ipa import IPA

        # IPA instruments archives at attach time via the harness; here
        # we only check the veto flag, so skip instrumentation
        vm = run_main(_hot_program(500), "jit.Main",
                      agents=[IPA(instrumentation="none")])
        assert not vm.jit.vetoed
        assert vm.jit.compile_count > 0

    def test_veto_overrides_enabled_policy(self):
        from repro.agents.counting import CountingAgent

        vm = run_main(_hot_program(500), "jit.Main",
                      agents=[CountingAgent()])
        assert vm.jit.vetoed
        assert vm.jit.compile_count == 0


class TestPolicyCopy:
    def test_copy_is_equal_and_independent(self):
        policy = JitPolicy(invoke_threshold=7, osr=False, pic_depth=2,
                          fusion=False, fusion_pairs=3)
        dup = policy.copy()
        assert dup == policy
        assert dup is not policy
        dup.invoke_threshold = 99
        assert policy.invoke_threshold == 7

    def test_copy_cannot_drop_fields(self):
        # copy() goes through dataclasses.replace, which carries every
        # declared field by name — a field added to JitPolicy can never
        # be silently dropped by a hand-written copy again.  Guard the
        # invariant by checking a non-default value of *every* field
        # survives the round trip.
        import dataclasses

        overrides = {}
        for field in dataclasses.fields(JitPolicy):
            if field.type == "bool" or isinstance(field.default, bool):
                overrides[field.name] = not field.default
            else:
                overrides[field.name] = field.default + 13
        policy = JitPolicy(**overrides)
        dup = policy.copy()
        for name, value in overrides.items():
            assert getattr(dup, name) == value, name
