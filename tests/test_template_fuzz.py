"""Differential fuzzing of the template tier.

Seeded :class:`random.Random` generators assemble verifiable bytecode
from a gadget vocabulary (constants, ALU, masked array accesses,
forward branches, ``iinc``, statics, helper calls), then run the same
program with the template tier on and off.  Every observable —
console, total cycles, per-tag ground truth, instructions retired,
inline-cache statistics, invocation counts, surviving static state —
must be identical.  A low invoke threshold guarantees the generated
method actually executes as a template.
"""

import random

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.launcher import create_vm

from helpers import build_app, expr_main, run_main

CALLS = 40
INT_LOCALS = (0, 1, 2, 3)  # local 0 is the int argument
ARRAY_LOCAL = 4


def _helper_class():
    c = ClassAssembler("fz.H")
    c.field("acc", static=True, default=0)
    with c.method("mix", "(I)I", static=True) as m:
        m.iload(0).iconst(3).imul().iconst(11).iadd().ireturn()
    return c


def _emit_simple(rng, m, labels):
    """One stack-neutral gadget (no control flow)."""
    kind = rng.randrange(8)
    a = rng.choice(INT_LOCALS)
    b = rng.choice(INT_LOCALS)
    c = rng.choice(INT_LOCALS)
    if kind == 0:
        m.iconst(rng.randrange(-1000, 1000)).istore(c)
    elif kind == 1:
        op = rng.choice(("iadd", "isub", "imul", "iand", "ior",
                         "ixor"))
        m.iload(a).iload(b)
        getattr(m, op)()
        m.istore(c)
    elif kind == 2:
        # shift amount kept in range by a constant operand
        m.iload(a).iconst(rng.randrange(0, 8))
        getattr(m, rng.choice(("ishl", "ishr", "iushr")))()
        m.istore(c)
    elif kind == 3:
        # division by a non-zero constant (no ArithmeticException:
        # exception parity is covered by test_template_tier)
        m.iload(a).iconst(rng.choice((3, 7, -5, 13)))
        getattr(m, rng.choice(("idiv", "irem")))()
        m.istore(c)
    elif kind == 4:
        m.iinc(rng.choice(INT_LOCALS), rng.randrange(-3, 4))
    elif kind == 5:
        # masked index keeps every array access in bounds
        m.aload(ARRAY_LOCAL)
        m.iload(a).iconst(7).iand()
        m.iload(b).iastore()
    elif kind == 6:
        m.aload(ARRAY_LOCAL)
        m.iload(a).iconst(7).iand()
        m.iaload().istore(c)
    else:
        m.getstatic("fz.H", "acc").iload(a).ixor()
        m.putstatic("fz.H", "acc")


def _emit_gadget(rng, m, labels, depth=0):
    roll = rng.randrange(10)
    if roll == 8 and depth < 2:
        # forward branch over a small block: both arms stack-empty
        skip = f"L{next(labels)}"
        cond = rng.choice(("ifeq", "ifne", "iflt", "ifge", "if_icmplt",
                           "if_icmpge", "if_icmpeq", "if_icmpne"))
        m.iload(rng.choice(INT_LOCALS))
        if cond.startswith("if_icmp"):
            m.iload(rng.choice(INT_LOCALS))
        getattr(m, cond)(skip)
        for _ in range(rng.randrange(1, 3)):
            _emit_gadget(rng, m, labels, depth + 1)
        m.label(skip)
    elif roll == 9:
        m.iload(rng.choice(INT_LOCALS))
        m.invokestatic("fz.H", "mix", "(I)I")
        m.istore(rng.choice(INT_LOCALS))
    else:
        _emit_simple(rng, m, labels)


def _generated_app(seed: int):
    rng = random.Random(seed)
    labels = iter(range(10_000))

    g = ClassAssembler("fz.G")
    with g.method("run", "(I)I", static=True) as m:
        # prologue: deterministic locals + a scratch array
        m.iload(0).iconst(1).iadd().istore(1)
        m.iload(0).iconst(5).imul().istore(2)
        m.iconst(0).istore(3)
        m.iconst(8).newarray(ArrayKind.INT).astore(ARRAY_LOCAL)
        for _ in range(rng.randrange(12, 25)):
            _emit_gadget(rng, m, labels)
        # epilogue: fold every int local into the result
        m.iload(0).iload(1).ixor().iload(2).iadd().iload(3).ixor()
        m.ireturn()

    def body(m):
        m.iconst(0).istore(0)
        m.iconst(0).istore(1)
        m.label("t")
        m.iload(1).ldc(CALLS).if_icmpge("e")
        m.iload(1).invokestatic("fz.G", "run", "(I)I")
        m.iload(0).ixor().istore(0)
        m.iinc(1, 1).goto("t")
        m.label("e")
        m.iload(0)

    return build_app(_helper_class(), g, expr_main("fz.Main", body))


def _run(seed: int, tier: bool):
    config = VMConfig(jit_policy=JitPolicy(
        template_tier=tier, invoke_threshold=3, backedge_threshold=30))
    vm = create_vm(config)
    return run_main(_generated_app(seed), "fz.Main", vm=vm)


def _observables(vm):
    return {
        "console": list(vm.console),
        "total_cycles": vm.total_cycles,
        "ground_truth": vm.ground_truth(),
        "instructions_retired": vm.instructions_retired,
        "ic_hits": vm.ic_hits,
        "ic_misses": vm.ic_misses,
        "pic_hits": vm.pic_hits,
        "pic_megamorphic": vm.pic_megamorphic,
        "pic_mono_to_poly": vm.pic_mono_to_poly,
        "pic_poly_to_mega": vm.pic_poly_to_mega,
        "method_invocations": vm.method_invocations,
        "acc_static": vm.loader.loaded_class("fz.H").statics["acc"],
    }


@pytest.mark.parametrize("seed", range(8))
def test_differential_parity(seed):
    templated = _run(seed, True)
    interp = _run(seed, False)
    assert _observables(templated) == _observables(interp)
    # the generated method really ran as a template...
    method = templated.loader.loaded_class("fz.G").find_declared(
        "run", "(I)I")
    assert method.compiled
    assert templated.jit.template_entries > 0
    # ...and never silently fell back: any bail-out or deopt is counted
    if method.template is None:
        assert templated.jit.template_bailouts or \
            templated.jit.template_deopts


def test_seeds_are_not_degenerate():
    # the generator must produce distinct programs (guards against a
    # refactor collapsing the vocabulary to one shape); printed values
    # can collide, instruction counts of distinct programs do not
    shapes = {_run(seed, True).instructions_retired
              for seed in range(8)}
    assert len(shapes) >= 6
