"""Bytecode layer: opcodes, instructions, assembler, disassembler."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.disassembler import disassemble, disassemble_method
from repro.bytecode.instructions import ExceptionEntry, Instruction
from repro.bytecode.opcodes import (
    ArrayKind,
    INVOKE_OPS,
    Op,
    OperandKind,
    SPECS,
    VARIABLE,
)
from repro.errors import BytecodeError


class TestOpcodeSpecs:
    def test_every_opcode_has_a_spec(self):
        assert set(SPECS) == set(Op)

    def test_mnemonics_are_unique(self):
        mnemonics = [spec.mnemonic for spec in SPECS.values()]
        assert len(mnemonics) == len(set(mnemonics))

    def test_branches_marked(self):
        assert SPECS[Op.GOTO].is_branch
        assert SPECS[Op.GOTO].ends_block
        assert SPECS[Op.IF_ICMPLT].is_branch
        assert not SPECS[Op.IF_ICMPLT].ends_block

    def test_returns_end_blocks(self):
        for op in (Op.RETURN, Op.IRETURN, Op.ARETURN, Op.ATHROW):
            assert SPECS[op].ends_block

    def test_invokes_have_variable_effects(self):
        for op in INVOKE_OPS:
            assert SPECS[op].pops == VARIABLE

    def test_fixed_effects_are_sane(self):
        assert SPECS[Op.IADD].pops == 2
        assert SPECS[Op.IADD].pushes == 1
        assert SPECS[Op.DUP].pops == 1
        assert SPECS[Op.DUP].pushes == 2
        assert SPECS[Op.IASTORE].pops == 3

    def test_opcode_values_stable(self):
        # the serializer depends on these staying put
        assert int(Op.NOP) == 0x00
        assert int(Op.ICONST) == 0x01
        assert int(Op.INVOKESTATIC) == 0x90
        assert int(Op.ATHROW) == 0xA0


class TestInstructionValidation:
    def test_operand_required(self):
        with pytest.raises(BytecodeError):
            Instruction(Op.ILOAD)

    def test_no_operand_allowed(self):
        with pytest.raises(BytecodeError):
            Instruction(Op.IADD, 1)

    def test_iinc_operand_shape(self):
        Instruction(Op.IINC, (1, -3))
        with pytest.raises(BytecodeError):
            Instruction(Op.IINC, 5)
        with pytest.raises(BytecodeError):
            Instruction(Op.IINC, (1,))

    def test_local_index_must_be_non_negative(self):
        with pytest.raises(BytecodeError):
            Instruction(Op.ILOAD, -1)

    def test_bool_rejected_as_int_operand(self):
        with pytest.raises(BytecodeError):
            Instruction(Op.ICONST, True)

    def test_label_operand_both_forms(self):
        unresolved = Instruction(Op.GOTO, "loop")
        assert not unresolved.is_resolved_branch
        resolved = Instruction(Op.GOTO, 4)
        assert resolved.is_resolved_branch


class TestAssembler:
    def test_labels_resolve_to_indices(self):
        c = ClassAssembler("t.A")
        with c.method("f", "()I", static=True) as m:
            m.iconst(0).istore(0)
            m.label("top")
            m.iload(0).iconst(10).if_icmpge("end")
            m.iinc(0, 1).goto("top")
            m.label("end")
            m.iload(0).ireturn()
        method = c.build().find_method("f", "()I")
        branch = method.code[4]
        assert branch.op is Op.IF_ICMPGE
        assert branch.operand == 7
        back = method.code[6]
        assert back.op is Op.GOTO
        assert back.operand == 2

    def test_undefined_label_raises(self):
        c = ClassAssembler("t.B")
        m = c.method("f", "()V", static=True)
        m.goto("nowhere")
        with pytest.raises(BytecodeError, match="undefined label"):
            m.finish()

    def test_duplicate_label_raises(self):
        c = ClassAssembler("t.C")
        m = c.method("f", "()V", static=True)
        m.label("x")
        with pytest.raises(BytecodeError, match="duplicate label"):
            m.label("x")

    def test_max_locals_accounts_args_and_stores(self):
        c = ClassAssembler("t.D")
        with c.method("f", "(II)I", static=True) as m:
            m.iload(0).iload(1).iadd().istore(5)
            m.iload(5).ireturn()
        method = c.build().find_method("f", "(II)I")
        assert method.max_locals == 6

    def test_instance_method_counts_receiver_slot(self):
        c = ClassAssembler("t.E")
        with c.method("g", "()V") as m:
            m.return_()
        method = c.build().find_method("g", "()V")
        assert method.max_locals == 1

    def test_ldc_deduplicates_pool_entries(self):
        c = ClassAssembler("t.F")
        with c.method("f", "()I", static=True) as m:
            m.ldc(123456).ldc(123456).iadd().ireturn()
        cf = c.build()
        method = cf.find_method("f", "()I")
        assert method.code[0].operand == method.code[1].operand

    def test_ldc_rejects_bool(self):
        c = ClassAssembler("t.G")
        m = c.method("f", "()V", static=True)
        with pytest.raises(BytecodeError):
            m.ldc(True)

    def test_native_method_declared_without_code(self):
        c = ClassAssembler("t.H")
        method = c.native_method("n", "(I)I", static=True)
        assert method.is_native
        assert method.code is None

    def test_emit_after_finish_fails(self):
        c = ClassAssembler("t.I")
        m = c.method("f", "()V", static=True)
        m.return_()
        m.finish()
        with pytest.raises(BytecodeError):
            m.iconst(1)

    def test_try_catch_labels_resolved(self):
        c = ClassAssembler("t.J")
        with c.method("f", "()V", static=True) as m:
            m.label("start")
            m.iconst(1).pop()
            m.label("end")
            m.return_()
            m.label("handler")
            m.pop().return_()
            m.try_catch("start", "end", "handler",
                        "java.lang.Exception")
        method = c.build(verify=False).find_method("f", "()V")
        entry = method.exception_table[0]
        assert (entry.start, entry.end, entry.handler) == (0, 2, 3)
        assert entry.catch_type == "java.lang.Exception"


class TestDisassembler:
    def _sample(self):
        c = ClassAssembler("t.K")
        c.field("count", static=True, default=0)
        with c.method("f", "(I)I", static=True) as m:
            m.label("top")
            m.iload(0).iconst(2).imul()
            m.ldc("hello")
            m.invokevirtual("java.lang.String", "length", "()I")
            m.iadd().ireturn()
        c.native_method("n", "()V", static=True)
        return c.build()

    def test_listing_contains_mnemonics_and_operands(self):
        text = disassemble(self._sample())
        assert "class t.K extends java.lang.Object" in text
        assert "iload 0" in text
        assert "java.lang.String.length()I" in text
        assert "'hello'" in text
        assert "<native>" in text

    def test_method_listing_shows_exception_table(self):
        c = ClassAssembler("t.L")
        with c.method("f", "()V", static=True) as m:
            m.label("a").iconst(1).pop()
            m.label("b").return_()
            m.label("h").pop().return_()
            m.try_catch("a", "b", "h", None)
        cf = c.build(verify=False)
        text = disassemble_method(cf.find_method("f", "()V"),
                                  cf.constant_pool)
        assert "catch <any>" in text


class TestExceptionEntry:
    def test_frozen(self):
        entry = ExceptionEntry(0, 1, 2, None)
        with pytest.raises(AttributeError):
            entry.start = 5

    def test_array_kind_values_stable(self):
        assert int(ArrayKind.INT) == 0
        assert int(ArrayKind.REF) == 4
