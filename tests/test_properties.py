"""Property-based tests (hypothesis) over core data structures and
invariants: value wrapping, constant pools, serialization round-trips,
verifier/interpreter agreement, and accounting conservation."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.classfile.constant_pool import (
    ConstantPool,
    CpClass,
    CpFieldRef,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.classfile.serializer import dump_class, load_class
from repro.jvm.values import wrap_char, wrap_int8, wrap_int32

from helpers import run_expr

int32 = st.integers(min_value=-2**31, max_value=2**31 - 1)
any_int = st.integers(min_value=-2**40, max_value=2**40)


class TestWrapProperties:
    @given(any_int)
    def test_wrap_int32_is_idempotent(self, value):
        assert wrap_int32(wrap_int32(value)) == wrap_int32(value)

    @given(any_int)
    def test_wrap_int32_range(self, value):
        wrapped = wrap_int32(value)
        assert -2**31 <= wrapped < 2**31

    @given(any_int)
    def test_wrap_int32_congruent_mod_2_32(self, value):
        assert (wrap_int32(value) - value) % 2**32 == 0

    @given(int32, int32)
    def test_wrap_add_homomorphic(self, a, b):
        assert wrap_int32(a + b) == \
            wrap_int32(wrap_int32(a) + wrap_int32(b))

    @given(any_int)
    def test_wrap_int8_range(self, value):
        assert -128 <= wrap_int8(value) <= 127

    @given(any_int)
    def test_wrap_char_range(self, value):
        assert 0 <= wrap_char(value) <= 0xFFFF


from repro.classfile.constant_pool import CpFloat  # noqa: E402

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz.", min_size=1, max_size=20)
_cp_entries = st.one_of(
    st.integers(min_value=-2**62, max_value=2**62).map(CpInt),
    st.floats(allow_nan=False, allow_infinity=False).map(CpFloat),
    st.text(max_size=30).map(CpString),
    _names.map(CpClass),
    st.tuples(_names, _names).map(lambda t: CpFieldRef(*t)),
    st.tuples(_names, _names).map(
        lambda t: CpMethodRef(t[0], t[1], "()V")),
)


class TestConstantPoolProperties:
    @given(st.lists(_cp_entries, max_size=40))
    def test_add_then_get_roundtrip(self, entries):
        pool = ConstantPool()
        indices = [pool.add(e) for e in entries]
        for entry, index in zip(entries, indices):
            assert pool.get(index) == entry

    @given(st.lists(_cp_entries, max_size=40))
    def test_pool_size_equals_distinct_entries(self, entries):
        pool = ConstantPool()
        for entry in entries:
            pool.add(entry)
        assert len(pool) == len(set(entries))

    @given(_cp_entries)
    def test_adding_twice_gives_same_index(self, entry):
        pool = ConstantPool()
        assert pool.add(entry) == pool.add(entry)


@st.composite
def straightline_programs(draw):
    """Random straight-line stack programs: a sequence of pushes and
    balanced binary ops ending with one value on the stack."""
    ops = []
    depth = 0
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        if depth >= 2 and draw(st.booleans()):
            op = draw(st.sampled_from(
                ["iadd", "isub", "imul", "iand", "ior", "ixor"]))
            ops.append((op, None))
            depth -= 1
        else:
            ops.append(("iconst",
                        draw(st.integers(min_value=-1000,
                                         max_value=1000))))
            depth += 1
    while depth > 1:
        ops.append(("iadd", None))
        depth -= 1
    return ops


_PYTHON_OPS = {
    "iadd": lambda a, b: wrap_int32(a + b),
    "isub": lambda a, b: wrap_int32(a - b),
    "imul": lambda a, b: wrap_int32(a * b),
    "iand": lambda a, b: wrap_int32(a & b),
    "ior": lambda a, b: wrap_int32(a | b),
    "ixor": lambda a, b: wrap_int32(a ^ b),
}


class TestInterpreterAgainstHostEvaluation:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(straightline_programs())
    def test_random_programs_match_host_semantics(self, program):
        stack = []
        for op, operand in program:
            if op == "iconst":
                stack.append(operand)
            else:
                b, a = stack.pop(), stack.pop()
                stack.append(_PYTHON_OPS[op](a, b))
        expected = stack[0]

        def body(m):
            for op, operand in program:
                if op == "iconst":
                    m.iconst(operand)
                else:
                    getattr(m, op)()

        result, _ = run_expr(body)
        assert result == expected

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(straightline_programs())
    def test_verifier_accepts_what_the_interpreter_runs(self, program):
        from repro.bytecode.verifier import verify_method

        c = ClassAssembler("prop.V")
        with c.method("f", "()I", static=True) as m:
            for op, operand in program:
                if op == "iconst":
                    m.iconst(operand)
                else:
                    getattr(m, op)()
            m.ireturn()
        cf = c.build(verify=False)
        depth = verify_method(cf.find_method("f", "()I"),
                              cf.constant_pool)
        pushes = sum(1 for op, _ in program if op == "iconst")
        assert 1 <= depth <= pushes


@st.composite
def random_classfiles(draw):
    c = ClassAssembler("gen.C" + str(draw(
        st.integers(min_value=0, max_value=999))))
    for i in range(draw(st.integers(min_value=0, max_value=4))):
        c.field(f"field{i}",
                static=draw(st.booleans()),
                default=draw(st.one_of(
                    st.none(),
                    st.integers(min_value=-2**31, max_value=2**31),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=12))))
    for i in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            c.native_method(f"nat{i}", "(I)I", static=True)
        else:
            with c.method(f"m{i}", "(I)I", static=True) as m:
                m.iload(0)
                m.iconst(draw(st.integers(min_value=-99,
                                          max_value=99)))
                m.iadd().ireturn()
    return c.build(verify=False)


class TestSerializationProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_classfiles())
    def test_roundtrip_is_identity_on_bytes(self, cf):
        first = dump_class(cf)
        second = dump_class(load_class(first))
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(random_classfiles())
    def test_roundtrip_preserves_members(self, cf):
        clone = load_class(dump_class(cf))
        assert [f.name for f in clone.fields] == \
            [f.name for f in cf.fields]
        assert [(m.name, m.descriptor, m.flags)
                for m in clone.methods] == \
            [(m.name, m.descriptor, m.flags) for m in cf.methods]

    @settings(max_examples=15, deadline=None)
    @given(st.lists(random_classfiles(), max_size=4,
                    unique_by=lambda cf: cf.name))
    def test_archive_roundtrip(self, classfiles):
        archive = ClassArchive()
        for cf in classfiles:
            archive.put_class(cf)
        clone = ClassArchive.from_bytes(archive.to_bytes())
        assert clone.names() == archive.names()
        for name in archive.names():
            assert clone.get_bytes(name) == archive.get_bytes(name)


class TestAccountingInvariants:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=400))
    def test_tags_partition_thread_counters(self, iterations):
        def body(m):
            m.iconst(0).istore(0)
            m.label("t")
            m.iload(0).ldc(iterations).if_icmpge("e")
            m.iinc(0, 1).goto("t")
            m.label("e")
            m.iload(0)

        result, vm = run_expr(body)
        assert result == iterations
        for thread in vm.threads.all_threads:
            assert sum(thread.cycles_by_tag.values()) == \
                thread.cycles_total

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    def test_array_fill_sum(self, length, seed):
        if length == 0:
            return

        def body(m):
            m.iconst(length).newarray(ArrayKind.INT).astore(0)
            m.iconst(0).istore(1)
            m.label("fill")
            m.iload(1).iconst(length).if_icmpge("sum")
            m.aload(0).iload(1)
            m.iload(1).iconst(seed).iadd()
            m.iastore()
            m.iinc(1, 1).goto("fill")
            m.label("sum")
            m.iconst(0).istore(2)
            m.iconst(0).istore(1)
            m.label("s")
            m.iload(1).iconst(length).if_icmpge("done")
            m.iload(2).aload(0).iload(1).iaload().iadd().istore(2)
            m.iinc(1, 1).goto("s")
            m.label("done")
            m.iload(2)

        result, _ = run_expr(body)
        assert result == sum(i + seed for i in range(length))


@st.composite
def branchy_programs(draw):
    """Random programs with forward branches over a value-producing
    diamond per step — verifier must accept, interpreter must finish."""
    steps = draw(st.integers(min_value=1, max_value=8))
    decisions = draw(st.lists(
        st.integers(min_value=-4, max_value=4),
        min_size=steps, max_size=steps))
    return decisions


class TestBranchyPrograms:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(branchy_programs())
    def test_diamonds_run_and_match_host(self, decisions):
        def body(m):
            m.iconst(0)
            for i, value in enumerate(decisions):
                m.iconst(value)
                m.ifge(f"pos{i}")
                m.iconst(1).goto(f"join{i}")
                m.label(f"pos{i}")
                m.iconst(100)
                m.label(f"join{i}")
                m.iadd()

        expected = sum(100 if v >= 0 else 1 for v in decisions)
        result, _ = run_expr(body)
        assert result == expected
