"""Multiple agents attached to one VM (JVMTI supports several
environments; their capabilities and events must compose)."""

from repro.agents.counting import CountingAgent
from repro.agents.ipa import IPA
from repro.agents.spa import SPA

from test_agents import MixedWorkload
from helpers import run_main


def _run_with(agents):
    workload = MixedWorkload(iterations=1500)
    vm = run_main(workload.archive, workload.main_class,
                  agents=agents)
    return vm


class TestMultiAgent:
    def test_spa_plus_counting_agree_on_counts(self):
        spa, counting = SPA(), CountingAgent()
        _run_with([spa, counting])
        assert spa.java_method_invocations == \
            counting.java_method_invocations
        assert spa.native_method_invocations == \
            counting.native_method_invocations

    def test_spa_veto_applies_to_coattached_ipa(self):
        # IPA alone keeps the JIT; with SPA alongside, the veto wins
        spa, ipa = SPA(), IPA(instrumentation="none")
        vm = _run_with([spa, ipa])
        assert vm.jit.vetoed
        # both received VMDeath
        assert spa.report()["vm_death_seen"]
        assert ipa.report()["vm_death_seen"]

    def test_ipa_interception_works_next_to_spa(self):
        spa, ipa = SPA(), IPA(instrumentation="none")
        _run_with([spa, ipa])
        # the launcher's CallStaticVoidMethod is still intercepted
        assert ipa.jni_calls >= 1

    def test_event_costs_accumulate_per_agent(self):
        single = _run_with([CountingAgent()])
        double = _run_with([CountingAgent(), CountingAgent()])
        assert double.ground_truth()["agent"] > \
            1.8 * single.ground_truth()["agent"]
