"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_agent_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "jess", "--agent", "bogus"])

    @pytest.mark.parametrize("agent", ["none", "spa", "ipa",
                                       "ipa-dynamic", "ipa-nocomp"])
    def test_agent_names_accepted(self, agent):
        args = build_parser().parse_args(
            ["profile", "jess", "--agent", agent])
        assert args.agent.label in ("original", "spa", "ipa")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("compress", "jess", "db", "javac", "mpegaudio",
                     "mtrt", "jack", "jbb2005"):
            assert name in out

    def test_profile_ipa(self, capsys):
        assert main(["profile", "jess", "--agent", "ipa"]) == 0
        out = capsys.readouterr().out
        assert "percent_native" in out
        assert "gt native %" in out

    def test_profile_baseline(self, capsys):
        assert main(["profile", "mtrt", "--agent", "none"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "agent report" not in out

    def test_profile_throughput_workload(self, capsys):
        assert main(["profile", "jbb2005", "--agent", "none"]) == 0
        out = capsys.readouterr().out
        assert "ops/second" in out


class TestArgumentValidation:
    """--scale/--runs/--jobs must be rejected at parse time — not crash
    deep inside workload construction or the harness."""

    @pytest.mark.parametrize("argv", [
        ["table1", "--scale", "0"],
        ["table1", "--scale", "-3"],
        ["table1", "--runs", "0"],
        ["table1", "--jobs", "0"],
        ["table2", "--scale", "-1"],
        ["table2", "--runs", "-2"],
        ["table2", "--jobs", "-4"],
        ["profile", "jess", "--scale", "0"],
        ["profile", "jess", "--runs", "0"],
        ["bench", "--scale", "0"],
    ])
    def test_nonpositive_values_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv)
        assert exc.value.code == 2  # argparse usage error
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "big"])
        assert "not an integer" in capsys.readouterr().err

    def test_positive_values_accepted(self):
        args = build_parser().parse_args(
            ["table1", "--scale", "2", "--runs", "3", "--jobs", "4"])
        assert (args.scale, args.runs, args.jobs) == (2, 3, 4)


class TestBenchCommand:
    def test_bench_parses_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.scale == 1
        assert args.output == "BENCH_interpreter.json"

    def test_bench_runs_and_writes(self, tmp_path, capsys, monkeypatch):
        from repro.workloads import jvm98_suite  # noqa: F401 - sanity
        out = tmp_path / "bench.json"
        assert main(["bench", "--scale", "1",
                     "--output", str(out)]) == 0
        console = capsys.readouterr().out
        assert "instr/s" in console
        assert out.exists()
        import json
        doc = json.loads(out.read_text())
        assert doc["instructions"] > 0
        assert doc["instructions_per_second"] > 0
        assert set(doc["per_workload"]) == {
            "compress", "jess", "db", "javac", "mpegaudio", "mtrt",
            "jack"}
