"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_agent_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "jess", "--agent", "bogus"])

    @pytest.mark.parametrize("agent", ["none", "spa", "ipa",
                                       "ipa-dynamic", "ipa-nocomp"])
    def test_agent_names_accepted(self, agent):
        args = build_parser().parse_args(
            ["profile", "jess", "--agent", agent])
        assert args.agent.label in ("original", "spa", "ipa")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("compress", "jess", "db", "javac", "mpegaudio",
                     "mtrt", "jack", "jbb2005"):
            assert name in out

    def test_profile_ipa(self, capsys):
        assert main(["profile", "jess", "--agent", "ipa"]) == 0
        out = capsys.readouterr().out
        assert "percent_native" in out
        assert "gt native %" in out

    def test_profile_baseline(self, capsys):
        assert main(["profile", "mtrt", "--agent", "none"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "agent report" not in out

    def test_profile_throughput_workload(self, capsys):
        assert main(["profile", "jbb2005", "--agent", "none"]) == 0
        out = capsys.readouterr().out
        assert "ops/second" in out
