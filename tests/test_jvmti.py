"""JVMTI layer: capabilities, events, TLS, raw monitors, interception,
prefixing, version gating."""

import pytest

from repro.errors import JVMTIError
from repro.jvm.machine import VMConfig
from repro.jvmti.agent import AgentBase
from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent
from repro.jvmti.host import JVMTI_VERSION_1_0, JVMTI_VERSION_1_1
from repro.jvmti.raw_monitor import RawMonitor
from repro.launcher import create_vm

from helpers import build_app, expr_main, run_main


class RecordingAgent(AgentBase):
    """Collects every event it subscribes to."""

    name = "recorder"

    def __init__(self, events=None, caps=None):
        super().__init__()
        self.received = []
        self._events = events or [JvmtiEvent.VM_INIT,
                                  JvmtiEvent.VM_DEATH,
                                  JvmtiEvent.THREAD_START,
                                  JvmtiEvent.THREAD_END]
        self._caps = caps or Capabilities()

    def on_load(self, env):
        super().on_load(env)
        env.add_capabilities(self._caps)
        callbacks = {
            JvmtiEvent.VM_INIT:
                lambda env_: self.received.append(("vm_init",)),
            JvmtiEvent.VM_DEATH:
                lambda env_: self.received.append(("vm_death",)),
            JvmtiEvent.THREAD_START:
                lambda env_, t: self.received.append(
                    ("thread_start", t.name)),
            JvmtiEvent.THREAD_END:
                lambda env_, t: self.received.append(
                    ("thread_end", t.name)),
            JvmtiEvent.METHOD_ENTRY:
                lambda env_, t, meth: self.received.append(
                    ("entry", meth.qualified_name)),
            JvmtiEvent.METHOD_EXIT:
                lambda env_, t, meth, exc: self.received.append(
                    ("exit", meth.qualified_name, exc)),
        }
        env.set_event_callbacks(callbacks)
        for event in self._events:
            env.enable_event(event)


def _simple_app(name="ev.Main"):
    return build_app(expr_main(name, lambda m: m.iconst(1)))


class TestCapabilities:
    def test_merge(self):
        merged = Capabilities(
            can_generate_method_entry_events=True).merged_with(
            Capabilities(can_set_native_method_prefix=True))
        assert merged.can_generate_method_entry_events
        assert merged.can_set_native_method_prefix

    def test_disables_jit_property(self):
        assert Capabilities(
            can_generate_method_entry_events=True).disables_jit
        assert Capabilities(
            can_generate_method_exit_events=True).disables_jit
        assert not Capabilities(
            can_set_native_method_prefix=True).disables_jit

    def test_method_entry_event_requires_capability(self):
        vm = create_vm()
        agent = AgentBase()
        env = vm.jvmti.attach(agent)
        env.set_event_callbacks(
            {JvmtiEvent.METHOD_ENTRY: lambda *a: None})
        with pytest.raises(JVMTIError, match="can_generate"):
            env.enable_event(JvmtiEvent.METHOD_ENTRY)

    def test_callback_required_before_enable(self):
        vm = create_vm()
        env = vm.jvmti.attach(AgentBase())
        with pytest.raises(JVMTIError, match="callback"):
            env.enable_event(JvmtiEvent.VM_DEATH)


class TestVersionGating:
    def test_prefix_capability_rejected_on_1_0(self):
        vm = create_vm(VMConfig(jvmti_version=JVMTI_VERSION_1_0))
        env = vm.jvmti.attach(AgentBase())
        with pytest.raises(JVMTIError, match="1.1"):
            env.add_capabilities(
                Capabilities(can_set_native_method_prefix=True))

    def test_prefix_capability_allowed_on_1_1(self):
        vm = create_vm(VMConfig(jvmti_version=JVMTI_VERSION_1_1))
        env = vm.jvmti.attach(AgentBase())
        env.add_capabilities(
            Capabilities(can_set_native_method_prefix=True))
        env.set_native_method_prefix("_x_")
        assert vm.jvmti.native_method_prefixes == ["_x_"]

    def test_prefix_requires_capability(self):
        vm = create_vm()
        env = vm.jvmti.attach(AgentBase())
        with pytest.raises(JVMTIError):
            env.set_native_method_prefix("_x_")

    def test_spa_runs_on_jvmti_1_0(self):
        # the paper notes SPA only needs JVMTI 1.0 (even JVMPI)
        from repro.agents.spa import SPA

        vm = run_main(_simple_app("v10.Main"), "v10.Main",
                      agents=[SPA()],
                      config=VMConfig(jvmti_version=JVMTI_VERSION_1_0))
        assert vm.agents[0].report()["vm_death_seen"]

    def test_ipa_needs_jvmti_1_1(self):
        from repro.agents.ipa import IPA

        vm = create_vm(VMConfig(jvmti_version=JVMTI_VERSION_1_0))
        with pytest.raises(JVMTIError):
            vm.attach_agent(IPA())


class TestEventDelivery:
    def test_lifecycle_events(self):
        agent = RecordingAgent()
        vm = run_main(_simple_app(), "ev.Main", agents=[agent])
        kinds = [item[0] for item in agent.received]
        assert kinds[0] == "vm_init"
        assert kinds[-1] == "vm_death"
        # bootstrapping (main) thread gets NO ThreadStart (the paper's
        # Section III point), but does get ThreadEnd
        assert ("thread_start", "main") not in agent.received
        assert ("thread_end", "main") in agent.received

    def test_worker_threads_get_thread_start(self):
        from repro.bytecode.assembler import ClassAssembler

        worker = ClassAssembler("evt.W", super_name="java.lang.Thread")
        with worker.method("run", "()V") as m:
            m.return_()
        main = ClassAssembler("evt.Main")
        with main.method("main", "()V", static=True) as m:
            m.new("evt.W").dup()
            m.invokespecial("evt.W", "<init>", "()V").astore(0)
            m.aload(0).invokevirtual("evt.W", "start", "()V")
            m.aload(0).invokevirtual("evt.W", "join", "()V")
            m.return_()
        agent = RecordingAgent()
        vm = run_main(build_app(worker, main), "evt.Main",
                      agents=[agent])
        starts = [item for item in agent.received
                  if item[0] == "thread_start"]
        assert len(starts) == 1

    def test_method_events_include_native_and_exceptional_exit(self):
        from repro.bytecode.assembler import ClassAssembler

        c = ClassAssembler("me.C")
        with c.method("boom", "()V", static=True) as m:
            m.aconst_null().arraylength().pop()
            m.return_()
        main = ClassAssembler("me.Main")
        with main.method("main", "()V", static=True) as m:
            m.label("try")
            m.invokestatic("me.C", "boom", "()V")
            m.label("try_end")
            m.return_()
            m.label("h")
            m.pop().return_()
            m.try_catch("try", "try_end", "h", None)
        caps = Capabilities(can_generate_method_entry_events=True,
                            can_generate_method_exit_events=True)
        agent = RecordingAgent(
            events=[JvmtiEvent.METHOD_ENTRY, JvmtiEvent.METHOD_EXIT],
            caps=caps)
        run_main(build_app(c, main), "me.Main", agents=[agent])
        exits = {item[1]: item[2] for item in agent.received
                 if item[0] == "exit"}
        assert exits["me.C.boom()V"] is True      # popped by exception
        assert exits["me.Main.main()V"] is False
        natives = [item for item in agent.received
                   if item[0] == "entry" and "arraycopy" in item[1]]
        # (no arraycopy here, but native entries exist for println etc)
        entries = [item[1] for item in agent.received
                   if item[0] == "entry"]
        assert any(".main()V" in name for name in entries)

    def test_event_dispatch_charges_agent_cycles(self):
        agent = RecordingAgent()
        vm = run_main(_simple_app("ch.Main"), "ch.Main",
                      agents=[agent])
        assert vm.ground_truth()["agent"] > 0

    def test_two_agents_both_receive(self):
        first, second = RecordingAgent(), RecordingAgent()
        run_main(_simple_app("two.Main"), "two.Main",
                 agents=[first, second])
        assert ("vm_death",) in first.received
        assert ("vm_death",) in second.received


class TestTlsAndMonitors:
    def test_tls_round_trip(self):
        vm = create_vm()
        env = vm.jvmti.attach(AgentBase())
        thread = vm.threads.create("t")
        vm.threads.current = thread
        assert env.tls_get(thread) is None
        env.tls_put(thread, {"x": 1})
        assert env.tls_get(thread) == {"x": 1}

    def test_tls_null_means_current_thread(self):
        vm = create_vm()
        env = vm.jvmti.attach(AgentBase())
        thread = vm.threads.create("t")
        vm.threads.current = thread
        env.tls_put(None, "payload")
        assert env.tls_get(None) == "payload"

    def test_tls_without_current_thread_fails(self):
        vm = create_vm()
        env = vm.jvmti.attach(AgentBase())
        with pytest.raises(JVMTIError):
            env.tls_get(None)

    def test_tls_is_per_agent(self):
        vm = create_vm()
        env1 = vm.jvmti.attach(AgentBase())
        env2 = vm.jvmti.attach(AgentBase())
        thread = vm.threads.create("t")
        vm.threads.current = thread
        env1.tls_put(thread, "one")
        assert env2.tls_get(thread) is None

    def test_raw_monitor_reentrant(self):
        monitor = RawMonitor("m")
        thread = object.__new__(type("T", (), {"name": "t"}))
        monitor.enter(thread)
        monitor.enter(thread)
        monitor.exit(thread)
        assert monitor.held
        monitor.exit(thread)
        assert not monitor.held

    def test_raw_monitor_wrong_owner(self):
        monitor = RawMonitor("m")
        t1 = type("T", (), {"name": "a"})()
        t2 = type("T", (), {"name": "b"})()
        monitor.enter(t1)
        with pytest.raises(JVMTIError):
            monitor.exit(t2)


class TestInterception:
    def test_wrapping_call_table_sees_invocations(self):
        vm = create_vm()
        env = vm.jvmti.attach(AgentBase())
        seen = []
        table = env.get_jni_function_table()

        def wrap(name, original):
            def wrapper(jni_env, *args):
                seen.append(name)
                return original(jni_env, *args)

            return wrapper

        env.set_jni_function_table({
            name: wrap(name, table[name]) for name in table})
        vm.loader.add_classpath_archive(_simple_app("ic.Main"))
        vm.launch("ic.Main")
        # the launcher enters main through CallStaticVoidMethod
        assert "CallStaticVoidMethod" in seen
