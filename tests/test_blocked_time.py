"""Blocked-time attribution (DESIGN.md §13): device timelines, the
off-CPU thread ledger, per-native attribution, and the
zero-perturbation guarantee — runs that never block must be bit
identical to the pre-I/O simulator, including their traces gaining
only host-side thread-state instants."""

import json

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.launcher import create_vm
from repro.observability import ObservabilityConfig
from repro.observability.chrome_trace import chrome_trace_doc
from repro.workloads import full_suite, get_workload


class TestDeviceTimelines:
    def test_blocked_time_never_touches_cpu_counters(self):
        vm = create_vm()
        thread = vm.threads.create("t")
        before = thread.cycles_total
        blocked = vm.block_on_device(thread, "disk", 1_000)
        assert blocked == 1_000
        assert thread.cycles_total == before
        assert thread.blocked_total == 1_000
        assert thread.blocked_by_device == {"disk": 1_000}
        assert thread.wall_cycles == before + 1_000

    def test_device_services_requests_in_arrival_order(self):
        vm = create_vm()
        first = vm.threads.create("a")
        second = vm.threads.create("b")
        vm.block_on_device(first, "disk", 500)
        # b's request arrives at wall clock 0 while the device is busy
        # until 500: it queues behind the in-flight request, then takes
        # 300 of service — blocked for 800
        blocked = vm.block_on_device(second, "disk", 300)
        assert blocked == 800
        assert vm.device_clock["disk"] == 800

    def test_devices_have_independent_timelines(self):
        vm = create_vm()
        thread = vm.threads.create("t")
        vm.block_on_device(thread, "disk", 400)
        # the net request starts at the thread's wall clock (400), not
        # behind the disk request
        blocked = vm.block_on_device(thread, "net", 250)
        assert blocked == 250
        assert vm.device_clock == {"disk": 400, "net": 650}

    def test_zero_service_time_is_free(self):
        vm = create_vm()
        thread = vm.threads.create("t")
        assert vm.block_on_device(thread, "disk", 0) == 0
        assert thread.blocked_total == 0
        assert vm.device_clock == {}

    def test_charge_blocked_attributes_to_the_native(self):
        vm = create_vm()
        thread = vm.threads.create("t")
        env = vm.jni_env(thread)
        env.native_name = "java.io.RandomAccessFile.readBytes([BII)I"
        env.charge_blocked("disk", 2_000)
        assert vm.blocked_by_native == {
            "java.io.RandomAccessFile.readBytes([BII)I": 2_000}
        assert vm.total_blocked == 2_000
        assert vm.wall_cycles == vm.total_cycles + 2_000


class TestZeroPerturbation:
    """No benchmark in the paper's suites ever blocks: the goldens (and
    every derived number) must not feel the I/O machinery at all."""

    def test_suite_workloads_never_block(self):
        for workload in full_suite(scale=1):
            result = execute(workload,
                             RunConfig(agent=AgentSpec.none()))
            assert result.blocked_cycles == 0, workload.name
            assert result.device_clocks == {}, workload.name
            assert result.wall_cycles == result.cycles, workload.name

    def test_io_run_splits_wall_into_cpu_and_blocked(self):
        result = execute(get_workload("io-logs"),
                         RunConfig(agent=AgentSpec.none()))
        assert result.blocked_cycles > 0
        assert result.wall_cycles == \
            result.cycles + result.blocked_cycles
        assert set(result.device_clocks) == {"disk"}
        assert sum(result.blocked_by_native.values()) == \
            result.blocked_cycles

    def test_no_io_trace_gains_thread_state_instants(self):
        # satellite: state instants appear in every traced run, not
        # just I/O runs — they are host-side and charge nothing
        plain = execute(get_workload("db"),
                        RunConfig(agent=AgentSpec.none()))
        traced = execute(get_workload("db"), RunConfig(
            agent=AgentSpec.none(),
            observability=ObservabilityConfig(trace=True,
                                              metrics=False)))
        assert traced.cycles == plain.cycles
        doc = chrome_trace_doc([traced.observability])
        states = [e for e in doc["traceEvents"]
                  if e.get("name") == "thread-state"]
        assert states, "no thread-state instants in the trace"
        assert {e["args"]["state"] for e in states} >= \
            {"RUNNING", "TERMINATED"}

    def test_io_trace_has_device_lane_and_blocked_spans(self):
        traced = execute(get_workload("io-logs"), RunConfig(
            agent=AgentSpec.none(),
            observability=ObservabilityConfig(trace=True,
                                              metrics=False)))
        doc = chrome_trace_doc([traced.observability])
        events = doc["traceEvents"]
        lanes = [e for e in events
                 if e.get("ph") == "M" and
                 e.get("args", {}).get("name") == "dev-disk"]
        assert lanes, "device lane never registered"
        spans = [e for e in events
                 if e.get("cat") == "io" and e.get("ph") == "X"]
        assert spans
        assert sum(e["args"]["blocked"] for e in spans) == \
            traced.blocked_cycles

    def test_blocked_metrics_only_emitted_when_blocking_happened(self):
        no_io = execute(get_workload("db"), RunConfig(
            agent=AgentSpec.none(),
            observability=ObservabilityConfig(trace=False,
                                              metrics=True)))
        names = {r["name"] for r in no_io.observability["metrics"]}
        assert not any(n.startswith(("blocked_", "device_"))
                       for n in names), names
        io = execute(get_workload("io-kv"), RunConfig(
            agent=AgentSpec.none(),
            observability=ObservabilityConfig(trace=False,
                                              metrics=True)))
        names = {r["name"] for r in io.observability["metrics"]}
        assert {"blocked_cycles", "wall_cycles", "device_disk_cycles",
                "blocked_disk_cycles"} <= names

    def test_offcpu_agent_accounts_all_blocked_time(self):
        from repro.observability.flamegraph import wall_folded_lines

        result = execute(get_workload("io-logs"),
                         RunConfig(agent=AgentSpec.offcpu()))
        report = result.agent_report
        assert report["agent"] == "offcpu"
        assert report["total_time_blocked"] == result.blocked_cycles
        hottest = report["hottest_blocked_contexts"]
        assert hottest and hottest[0]["blocked_cycles"] > 0
        lines = wall_folded_lines(result.agent_object.roots)
        assert any("_[offcpu]" in line for line in lines)
        # blocked weight in the folded output equals the run's total:
        # one synthetic leaf per context's self-blocked time
        blocked_weight = sum(
            int(line.rsplit(" ", 1)[1]) for line in lines
            if "_[offcpu]" in line)
        assert blocked_weight == result.blocked_cycles

    def test_offcpu_agent_charges_like_callchain(self):
        plain = execute(get_workload("io-kv"),
                        RunConfig(agent=AgentSpec.callchain()))
        offcpu = execute(get_workload("io-kv"),
                         RunConfig(agent=AgentSpec.offcpu()))
        # reading the blocked counter is a host-side peek: the agent
        # perturbs the run exactly as much as callchain does
        assert offcpu.cycles == plain.cycles
        assert offcpu.blocked_cycles == plain.blocked_cycles

    def test_results_are_json_serializable(self):
        result = execute(get_workload("io-echo"),
                         RunConfig(agent=AgentSpec.none()))
        json.dumps({"blocked": result.blocked_cycles,
                    "devices": result.device_clocks,
                    "by_native": result.blocked_by_native,
                    "wall": result.wall_cycles})
