"""Deeper checks of the workload host mirrors themselves — the oracles
every benchmark run is validated against."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.workloads import data
from repro.workloads.compress import (
    DICT_SIZE,
    reference_lzw,
)
from repro.workloads.db import java_string_hash
from repro.workloads.jack import expected_output, generate_spec, \
    scan_checksum
from repro.workloads.javac import generate_source


def lzw_decode(payload: bytes) -> bytes:
    """Independent LZW decoder for the 12-bit format the compress
    workload emits (including the dictionary-reset behaviour)."""
    # unpack 12-bit codes
    codes = []
    bit_buf = 0
    bit_cnt = 0
    for byte in payload:
        bit_buf = (bit_buf << 8) | byte
        bit_cnt += 8
        if bit_cnt >= 12:
            codes.append((bit_buf >> (bit_cnt - 12)) & 0xFFF)
            bit_cnt -= 12
    # standard LZW decode mirroring the encoder's reset rule
    table = {i: bytes([i]) for i in range(256)}
    next_code = 256
    out = bytearray()
    prev = None
    for code in codes:
        if code in table:
            entry = table[code]
        elif code == next_code and prev is not None:
            entry = prev + prev[:1]
        else:  # pragma: no cover - corrupt stream
            raise AssertionError(f"bad code {code}")
        out.extend(entry)
        if prev is not None:
            if next_code < DICT_SIZE:
                table[next_code] = prev + entry[:1]
                next_code += 1
            else:
                table = {i: bytes([i]) for i in range(256)}
                next_code = 256
                # the encoder emits the *next* symbol with a fresh
                # dictionary; prev must not seed an entry
                prev = entry
                continue
        prev = entry
    return bytes(out)


class TestLzwReference:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_roundtrip_random_binary(self, payload):
        packed, _codes = reference_lzw(payload)
        assert lzw_decode(packed) == payload

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10**6))
    def test_roundtrip_texty_input(self, kilobytes, seed):
        payload = data.text_bytes(kilobytes * 1024, seed=seed)
        packed, codes = reference_lzw(payload)
        assert lzw_decode(packed) == payload
        # pseudo-text must actually compress
        assert len(packed) < len(payload)
        assert codes == (len(packed) * 8) // 12

    def test_empty_input(self):
        packed, codes = reference_lzw(b"")
        assert packed == b""
        assert codes == 0

    def test_single_byte(self):
        packed, codes = reference_lzw(b"A")
        assert codes == 1
        assert lzw_decode(packed) == b"A"


class TestJavaStringHash:
    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=40))
    def test_range_is_int32(self, text):
        h = java_string_hash(text)
        assert -2**31 <= h < 2**31

    def test_known_values(self):
        # Java's documented algorithm: s[0]*31^(n-1) + ... + s[n-1]
        assert java_string_hash("") == 0
        assert java_string_hash("a") == 97
        assert java_string_hash("ab") == 97 * 31 + 98


class TestGeneratedInputs:
    def test_javac_source_scales_linearly(self):
        small = generate_source(1)
        large = generate_source(3)
        assert 2.5 < len(large) / len(small) < 3.5

    def test_javac_source_is_deterministic(self):
        assert generate_source(2) == generate_source(2)

    def test_jack_spec_and_expected_output_consistent(self):
        spec, rules = generate_spec(1)
        text = expected_output(rules)
        for name, tokens in rules:
            assert f"void parse_{name}()".encode() in text
            for token in tokens:
                assert f"match({token});".encode() in text

    def test_jack_scan_checksum_accumulates_per_iteration(self):
        spec, _ = generate_spec(1)
        one = scan_checksum(spec, 1)
        two = scan_checksum(spec, 2)
        assert one != two

    def test_text_bytes_exact_length_and_determinism(self):
        a = data.text_bytes(1000, seed=5)
        b = data.text_bytes(1000, seed=5)
        c = data.text_bytes(1000, seed=6)
        assert len(a) == 1000
        assert a == b
        assert a != c

    def test_word_list_respects_bounds(self):
        words = data.word_list(50, seed=3, min_len=4, max_len=7)
        assert len(words) == 50
        assert all(4 <= len(w) <= 7 for w in words)
