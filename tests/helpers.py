"""Shared test utilities: tiny programs and VM construction."""

from __future__ import annotations

from repro.bytecode.assembler import ClassAssembler
from repro.classfile.archive import ClassArchive
from repro.launcher import create_vm


def build_app(*class_assemblers) -> ClassArchive:
    """Serialize finished assemblers into an app archive."""
    archive = ClassArchive()
    for assembler in class_assemblers:
        archive.put_class(assembler.build())
    return archive


def run_main(archive: ClassArchive, main_class: str, vm=None,
             agents=(), files=None, config=None):
    """Launch a VM over ``archive`` and return it after completion."""
    if vm is None:
        vm = create_vm(config)
    for agent in agents:
        vm.attach_agent(agent)
    vm.loader.add_classpath_archive(archive)
    for name, payload in (files or {}).items():
        vm.add_file(name, payload)
    vm.launch(main_class)
    return vm


def expr_main(class_name: str, body) -> ClassAssembler:
    """A main()V whose body is emitted by ``body(m)`` and which must
    leave one int on the stack; the value is printed as ``result=N``."""
    c = ClassAssembler(class_name)
    with c.method("main", "()V", static=True) as m:
        m.getstatic("java.lang.System", "out")
        body(m)
        m.invokevirtual("java.io.PrintStream", "println", "(I)V")
        m.return_()
    return c


def run_expr(body, class_name: str = "t.Expr"):
    """Run an int-expression main; return (int result, vm)."""
    vm = run_main(build_app(expr_main(class_name, body)), class_name)
    assert vm.console, "expression printed nothing"
    return int(vm.console[-1]), vm


def int_method(class_name: str, name: str, descriptor: str, body,
               static: bool = True) -> ClassAssembler:
    """One-method class; ``body(m)`` emits the code."""
    c = ClassAssembler(class_name)
    with c.method(name, descriptor, static=static) as m:
        body(m)
    return c
