"""The sampling-profiler baseline (related work, paper Section VI)."""

import pytest

from repro.agents.sampling import SamplingProfiler
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.workloads import get_workload

from test_agents import MixedWorkload


@pytest.fixture(scope="module")
def sampled():
    workload = MixedWorkload()
    base = execute(workload, RunConfig(agent=AgentSpec.none()))
    run = execute(workload, RunConfig(
        agent=AgentSpec.none(),
        sampler=lambda: SamplingProfiler(interval=5_000)))
    return base, run


class TestSamplingProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_low_overhead(self, sampled):
        base, run = sampled
        overhead = run.cycles / base.cycles - 1
        assert overhead < 0.05  # a few percent at most

    def test_estimates_native_fraction(self, sampled):
        base, run = sampled
        truth = base.ground_truth_native_fraction * 100
        estimate = run.sampler_report["percent_native"]
        # sampling error: looser bound than IPA's
        assert estimate == pytest.approx(truth, abs=4.0)

    def test_sample_counts_scale_with_interval(self):
        workload = MixedWorkload()
        coarse = execute(workload, RunConfig(
            agent=AgentSpec.none(),
            sampler=lambda: SamplingProfiler(interval=50_000)))
        fine = execute(workload, RunConfig(
            agent=AgentSpec.none(),
            sampler=lambda: SamplingProfiler(interval=5_000)))
        assert fine.sampler_report["samples"] > \
            5 * coarse.sampler_report["samples"]

    def test_cannot_count_transitions(self, sampled):
        _, run = sampled
        assert run.sampler_report["jni_calls"] is None
        assert run.sampler_report["native_method_calls"] is None

    def test_no_sampler_no_report(self, sampled):
        base, _ = sampled
        assert base.sampler_report is None

    def test_sampling_cost_lands_in_vm_bucket(self, sampled):
        base, run = sampled
        assert run.ground_truth["vm"] > base.ground_truth["vm"]

    def test_works_on_a_real_workload(self):
        workload = get_workload("jess")
        base = execute(workload, RunConfig(agent=AgentSpec.none()))
        run = execute(workload, RunConfig(
            agent=AgentSpec.none(),
            sampler=lambda: SamplingProfiler(interval=4_000)))
        truth = base.ground_truth_native_fraction * 100
        assert run.sampler_report["percent_native"] == \
            pytest.approx(truth, abs=4.0)
