"""Workloads: registry, validation against host mirrors, and the
characterisation axes each benchmark was built for."""

import pytest

from repro.errors import WorkloadError
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.workloads import (
    full_suite,
    get_workload,
    jvm98_suite,
    workload_names,
)
from repro.workloads.base import MetricKind


class TestRegistry:
    def test_all_benchmarks_registered(self):
        names = set(workload_names())
        assert names == {"compress", "jess", "db", "javac",
                         "mpegaudio", "mtrt", "jack", "jbb2005",
                         "fj-kmeans", "actors", "reactors",
                         "racy-counter", "racy-lockorder",
                         "io-logs", "io-kv", "io-echo"}

    def test_jvm98_suite_order_matches_paper(self):
        assert [w.name for w in jvm98_suite()] == [
            "compress", "jess", "db", "javac", "mpegaudio", "mtrt",
            "jack"]

    def test_full_suite_appends_jbb(self):
        assert [w.name for w in full_suite()][-1] == "jbb2005"

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            get_workload("db", scale=0)

    def test_metric_kinds(self):
        assert get_workload("compress").metric is MetricKind.TIME
        assert get_workload("jbb2005").metric is MetricKind.THROUGHPUT


@pytest.fixture(scope="module")
def baseline_runs():
    """One baseline run of every workload at scale 1 (validated by
    ``execute`` against each workload's host mirror)."""
    return {w.name: execute(w, RunConfig(agent=AgentSpec.none()))
            for w in full_suite(scale=1)}


class TestValidation:
    def test_every_workload_passes_its_mirror_check(self, baseline_runs):
        for name, result in baseline_runs.items():
            assert result.validation_ok, name

    def test_every_workload_does_real_work(self, baseline_runs):
        for name, result in baseline_runs.items():
            assert result.instructions > 10_000, name

    def test_determinism(self):
        workload = get_workload("jess")
        a = execute(workload, RunConfig(agent=AgentSpec.none()))
        b = execute(workload, RunConfig(agent=AgentSpec.none()))
        assert a.cycles == b.cycles
        assert a.console == b.console

    def test_scale_increases_work(self):
        small = execute(get_workload("jess", 1),
                        RunConfig(agent=AgentSpec.none()))
        large = execute(get_workload("jess", 3),
                        RunConfig(agent=AgentSpec.none()))
        assert large.cycles > small.cycles * 2

    def test_jbb_reports_operations(self, baseline_runs):
        result = baseline_runs["jbb2005"]
        assert result.operations == 60 * (1 + 2 + 3 + 4)
        assert result.operations_per_second > 0

    def test_time_workloads_do_not_report_operations(self,
                                                     baseline_runs):
        assert baseline_runs["compress"].operations is None


class TestCharacterisationAxes:
    """The workload-design properties the paper's numbers rest on."""

    def test_native_fraction_band(self, baseline_runs):
        # Table II: native execution within 1-20 % for every benchmark
        for name, result in baseline_runs.items():
            fraction = result.ground_truth_native_fraction * 100
            assert 0.1 <= fraction <= 25.0, (name, fraction)

    def test_high_native_group(self, baseline_runs):
        # javac, jack and JBB2005 are the paper's high-native group
        low = baseline_runs["db"].ground_truth_native_fraction
        for name in ("javac", "jack", "jbb2005"):
            assert baseline_runs[name].ground_truth_native_fraction \
                > 3 * low, name

    def test_low_native_group(self, baseline_runs):
        # db, mpegaudio and mtrt form the paper's sub-2 % group
        ranked = sorted(baseline_runs,
                        key=lambda n: baseline_runs[n]
                        .ground_truth_native_fraction)
        assert set(ranked[:3]) == {"db", "mpegaudio", "mtrt"}
        for name in ("db", "mpegaudio", "mtrt"):
            assert baseline_runs[name].ground_truth_native_fraction \
                < 0.02, name

    def test_bytecode_dominates_everywhere(self, baseline_runs):
        # the paper's headline conclusion
        for name, result in baseline_runs.items():
            truth = result.ground_truth
            assert truth["bytecode"] > 3 * truth["native"], name

    def test_mtrt_uses_two_worker_threads(self):
        from repro.launcher import create_vm
        from repro.jni.stdlib import build_java_library
        from repro.launcher import runtime_archive
        from repro.jvm.machine import JavaVM

        workload = get_workload("mtrt")
        result = execute(workload, RunConfig(agent=AgentSpec.none()))
        # main + 2 workers is encoded in the console checksums
        assert any(line.startswith("cs0=") for line in result.console)
        assert any(line.startswith("cs1=") for line in result.console)

    def test_compress_writes_its_output_file(self):
        from repro.workloads.compress import OUTPUT_FILE, reference_lzw

        workload = get_workload("compress")
        result = execute(workload, RunConfig(agent=AgentSpec.none()))
        assert result.validation_ok
        expected, _ = reference_lzw(workload.input_bytes)
        assert result.console  # crc= and outBytes= lines
