"""Template tier (second execution tier): parity, deopt, metrics.

The tier's contract is absolute: every simulated observable — console
output, total cycles, per-tag ground truth, instructions retired,
inline-cache statistics, method-invocation counts — is bit-identical
with the tier on or off.  Only host throughput may differ.  These tests
pin the contract on targeted programs (hot loops, call chains,
exceptions, deopt paths, native re-entry); ``test_template_fuzz.py``
pins it on randomized bytecode.
"""

from pathlib import Path

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import Op
from repro.jit.policy import JitPolicy
from repro.jit.template import translate
from repro.jni.library import NativeLibrary
from repro.jvm.machine import VMConfig
from repro.launcher import create_vm

from helpers import build_app, expr_main, run_main

RESULTS = Path(__file__).resolve().parent.parent / "results"

#: Low threshold so tiny test programs reach the template quickly.
HOT = dict(invoke_threshold=5, backedge_threshold=50)


def _run_tiered(archive, main_class, tier: bool, files=None,
                libraries=(), **policy_kwargs):
    kwargs = dict(HOT)
    kwargs.update(policy_kwargs)
    config = VMConfig(jit_policy=JitPolicy(template_tier=tier,
                                           **kwargs))
    vm = create_vm(config)
    for library in libraries:
        vm.native_registry.register(library, preload=True)
    return run_main(archive, main_class, vm=vm, files=files)


def _observables(vm):
    return {
        "console": list(vm.console),
        "total_cycles": vm.total_cycles,
        "ground_truth": vm.ground_truth(),
        "instructions_retired": vm.instructions_retired,
        "ic_hits": vm.ic_hits,
        "ic_misses": vm.ic_misses,
        "pic_hits": vm.pic_hits,
        "pic_megamorphic": vm.pic_megamorphic,
        "pic_mono_to_poly": vm.pic_mono_to_poly,
        "pic_poly_to_mega": vm.pic_poly_to_mega,
        "method_invocations": vm.method_invocations,
        "native_invocations": vm.native_invocations,
    }


def _assert_parity(build, main_class, files=None, library_factory=None,
                   **policy_kwargs):
    """Run the program under both tiers; all observables must match.

    ``build``/``library_factory`` are callables so each tier gets fresh
    assembler/library objects (quickening mutates instruction state).
    Returns the template-tier VM for tier-specific assertions.
    """
    libs = (library_factory(),) if library_factory else ()
    templated = _run_tiered(build(), main_class, True, files=files,
                            libraries=libs, **policy_kwargs)
    libs = (library_factory(),) if library_factory else ()
    interp = _run_tiered(build(), main_class, False, files=files,
                         libraries=libs, **policy_kwargs)
    assert _observables(templated) == _observables(interp)
    assert interp.jit.template_entries == 0
    assert len(interp.jit.code_cache) == 0
    return templated


def _hot_loop_app(calls=200):
    def build():
        c = ClassAssembler("tt.Hot")
        with c.method("work", "(I)I", static=True) as m:
            m.iload(0).iconst(3).imul().iconst(1).iadd().ireturn()

        def body(m):
            m.iconst(0).istore(0)
            m.iconst(0).istore(1)
            m.label("t")
            m.iload(1).ldc(calls).if_icmpge("e")
            m.iload(0).invokestatic("tt.Hot", "work", "(I)I").istore(0)
            m.iinc(1, 1).goto("t")
            m.label("e")
            m.iload(0)

        return build_app(c, expr_main("tt.Main", body))

    return build


class TestTranslation:
    def test_hot_method_gets_template(self):
        vm = _run_tiered(_hot_loop_app()(), "tt.Main", True)
        method = vm.loader.loaded_class("tt.Hot").find_declared(
            "work", "(I)I")
        assert method.compiled
        assert method.template is not None
        assert vm.jit.templates_translated >= 1
        assert vm.jit.template_entries > 0

    def test_tier_off_translates_nothing(self):
        vm = _run_tiered(_hot_loop_app()(), "tt.Main", False)
        method = vm.loader.loaded_class("tt.Hot").find_declared(
            "work", "(I)I")
        assert method.compiled  # the cost-array JIT still fires
        assert method.template is None
        assert vm.jit.templates_translated == 0
        assert vm.jit.template_entries == 0

    def test_code_cache_keeps_source(self):
        vm = _run_tiered(_hot_loop_app()(), "tt.Main", True)
        method = vm.loader.loaded_class("tt.Hot").find_declared(
            "work", "(I)I")
        source = vm.jit.code_cache.source_for(method)
        assert source is not None
        assert "def template(interp, thread, frame, osr_pc=-1):" in source


class TestParity:
    def test_hot_loop(self):
        vm = _assert_parity(_hot_loop_app(2000), "tt.Main")
        assert vm.jit.template_entries > 1000

    def test_invoke_chain(self):
        # f -> g -> h all hot: templates re-enter the interpreter for
        # nested calls, which may themselves run templates
        def build():
            c = ClassAssembler("tt.Chain")
            with c.method("h", "(I)I", static=True) as m:
                m.iload(0).iconst(7).iadd().ireturn()
            with c.method("g", "(I)I", static=True) as m:
                m.iload(0).invokestatic("tt.Chain", "h", "(I)I")
                m.iconst(2).imul().ireturn()
            with c.method("f", "(I)I", static=True) as m:
                m.iload(0).invokestatic("tt.Chain", "g", "(I)I")
                m.iconst(1).isub().ireturn()

            def body(m):
                m.iconst(0).istore(0)
                m.iconst(0).istore(1)
                m.label("t")
                m.iload(1).ldc(300).if_icmpge("e")
                m.iload(1).invokestatic("tt.Chain", "f", "(I)I")
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("tt.ChainM", body))

        vm = _assert_parity(build, "tt.ChainM")
        names = {m.qualified_name: m
                 for m in vm.jit.methods_compiled}
        for q in ("tt.Chain.f(I)I", "tt.Chain.g(I)I", "tt.Chain.h(I)I"):
            assert names[q].template is not None

    def test_virtual_dispatch_inline_cache(self):
        # two receiver classes alternating: exercises the template's
        # inline-cache hit AND miss paths; ic counters must match
        def build():
            base = ClassAssembler("tt.Base")
            with base.method("<init>", "()V") as m:
                m.return_()
            with base.method("pick", "()I") as m:
                m.iconst(1).ireturn()
            sub = ClassAssembler("tt.Sub", super_name="tt.Base")
            with sub.method("<init>", "()V") as m:
                m.return_()
            with sub.method("pick", "()I") as m:
                m.iconst(2).ireturn()
            c = ClassAssembler("tt.Disp")
            with c.method("call", "(Ltt.Base;)I", static=True) as m:
                m.aload(0).invokevirtual("tt.Base", "pick", "()I")
                m.ireturn()

            def body(m):
                m.new("tt.Base").dup()
                m.invokespecial("tt.Base", "<init>", "()V").astore(0)
                m.new("tt.Sub").dup()
                m.invokespecial("tt.Sub", "<init>", "()V").astore(1)
                m.iconst(0).istore(2)
                m.iconst(0).istore(3)
                m.label("t")
                m.iload(3).ldc(100).if_icmpge("e")
                # base, base, sub: the repeated receiver produces IC
                # hits, the switch produces misses — both paths covered
                m.aload(0).invokestatic("tt.Disp", "call",
                                        "(Ltt.Base;)I")
                m.aload(0).invokestatic("tt.Disp", "call",
                                        "(Ltt.Base;)I")
                m.iadd()
                m.aload(1).invokestatic("tt.Disp", "call",
                                        "(Ltt.Base;)I")
                m.iadd().iload(2).iadd().istore(2)
                m.iinc(3, 1).goto("t")
                m.label("e")
                m.iload(2)

            return build_app(base, sub, c, expr_main("tt.DispM", body))

        vm = _assert_parity(build, "tt.DispM")
        assert vm.console[-1] == "400"
        assert vm.ic_misses > 0 and vm.ic_hits > 0

    def test_exception_from_template_caught_in_caller(self):
        # the hot thrower runs as a template; the exception unwinds
        # into the interpreted caller's handler
        def build():
            c = ClassAssembler("tt.Thrower")
            with c.method("boom", "(I)I", static=True) as m:
                m.iload(0).iconst(90).if_icmplt("ok")
                m.new("java.lang.RuntimeException").dup()
                m.ldc("late")
                m.invokespecial("java.lang.RuntimeException", "<init>",
                                "(Ljava.lang.String;)V")
                m.athrow()
                m.label("ok")
                m.iload(0).ireturn()
            with c.method("attempt", "(I)I", static=True) as m:
                m.label("try")
                m.iload(0).invokestatic("tt.Thrower", "boom", "(I)I")
                m.ireturn()
                m.label("try_end")
                m.label("handler")
                m.pop().iconst(-1).ireturn()
                m.try_catch("try", "try_end", "handler",
                            "java.lang.RuntimeException")

            def body(m):
                m.iconst(0).istore(0)
                m.iconst(0).istore(1)
                m.label("t")
                m.iload(1).ldc(100).if_icmpge("e")
                m.iload(1).invokestatic("tt.Thrower", "attempt", "(I)I")
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("tt.ThrowM", body))

        vm = _assert_parity(build, "tt.ThrowM")
        # 0+..+89 minus one per throwing call (90..99)
        assert vm.console[-1] == str(sum(range(90)) - 10)
        method = vm.loader.loaded_class("tt.Thrower").find_declared(
            "boom", "(I)I")
        assert method.template is not None

    def test_handler_in_templated_method(self):
        # the handler lives in the same method as the (hot, templated)
        # throw site: the template raises, _dispatch_exception lands on
        # the handler, and the activation finishes interpreted
        def build():
            c = ClassAssembler("tt.SelfCatch")
            with c.method("safe_div", "(II)I", static=True) as m:
                m.label("try")
                m.iload(0).iload(1).idiv().ireturn()
                m.label("try_end")
                m.label("handler")
                m.pop().iconst(-7).ireturn()
                m.try_catch("try", "try_end", "handler",
                            "java.lang.ArithmeticException")

            def body(m):
                m.iconst(0).istore(0)
                m.iconst(0).istore(1)
                m.label("t")
                m.iload(1).ldc(50).if_icmpge("e")
                m.ldc(100).iload(1).iconst(5).irem()
                m.invokestatic("tt.SelfCatch", "safe_div", "(II)I")
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("tt.SelfM", body))

        vm = _assert_parity(build, "tt.SelfM")
        method = vm.loader.loaded_class("tt.SelfCatch").find_declared(
            "safe_div", "(II)I")
        assert method.template is not None

    def test_uncaught_exception_parity(self):
        def build():
            c = ClassAssembler("tt.Die")
            with c.method("maybe", "(I)I", static=True) as m:
                m.iload(0).ldc(40).if_icmplt("ok")
                m.new("java.lang.IllegalStateException").dup()
                m.ldc("done")
                m.invokespecial("java.lang.IllegalStateException",
                                "<init>", "(Ljava.lang.String;)V")
                m.athrow()
                m.label("ok")
                m.iload(0).ireturn()

            def body(m):
                m.iconst(0).istore(0)
                m.label("t")
                m.iload(0).invokestatic("tt.Die", "maybe", "(I)I").pop()
                m.iinc(0, 1).goto("t")

            c2 = ClassAssembler("tt.DieM")
            with c2.method("main", "()V", static=True) as m:
                body(m)
                m.return_()
            return build_app(c, c2)

        vm = _assert_parity(build, "tt.DieM")
        assert "IllegalStateException" in vm.console[-1]

    def test_native_reentry_and_unwind(self):
        # a templated caller invokes a native method that JNI-calls
        # back into (templated) bytecode, which eventually throws; the
        # Unwind crosses native and is caught by the template
        def build():
            c = ClassAssembler("tt.Cb")
            c.native_method("viaJni", "(I)I", static=True)
            with c.method("twice", "(I)I", static=True) as m:
                m.iload(0).ldc(195).if_icmplt("ok")
                m.new("java.lang.RuntimeException").dup()
                m.ldc("native edge")
                m.invokespecial("java.lang.RuntimeException", "<init>",
                                "(Ljava.lang.String;)V")
                m.athrow()
                m.label("ok")
                m.iload(0).iconst(2).imul().ireturn()
            with c.method("driver", "(I)I", static=True) as m:
                m.label("try")
                m.iload(0).invokestatic("tt.Cb", "viaJni", "(I)I")
                m.ireturn()
                m.label("try_end")
                m.label("handler")
                m.pop().iconst(-3).ireturn()
                m.try_catch("try", "try_end", "handler",
                            "java.lang.RuntimeException")

            def body(m):
                m.iconst(0).istore(0)
                m.iconst(0).istore(1)
                m.label("t")
                m.iload(1).ldc(200).if_icmpge("e")
                m.iload(1).invokestatic("tt.Cb", "driver", "(I)I")
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("tt.CbM", body))

        def library():
            lib = NativeLibrary("ttcb")

            @lib.native_method("tt.Cb", "viaJni")
            def via_jni(env, value):
                env.charge(20)
                mid = env.get_static_method_id("tt.Cb", "twice", "(I)I")
                return env.call_static_int_method(mid, value)

            return lib

        vm = _assert_parity(build, "tt.CbM", library_factory=library)
        assert vm.console[-1] == str(sum(2 * i for i in range(195))
                                     - 3 * 5)
        driver = vm.loader.loaded_class("tt.Cb").find_declared(
            "driver", "(I)I")
        assert driver.template is not None

    def test_stack_overflow_parity(self):
        # unbounded recursion: both tiers must die with the same
        # simulated StackOverflowSimError at identical cycle counts
        from repro.errors import StackOverflowSimError

        def build():
            c = ClassAssembler("tt.Rec")
            with c.method("down", "(I)I", static=True) as m:
                m.iload(0).iconst(1).iadd()
                m.invokestatic("tt.Rec", "down", "(I)I").ireturn()

            def body(m):
                m.iconst(0).invokestatic("tt.Rec", "down", "(I)I")

            return build_app(c, expr_main("tt.RecM", body))

        outcomes = []
        for tier in (True, False):
            vm = create_vm(VMConfig(jit_policy=JitPolicy(
                template_tier=tier, **HOT)))
            vm.loader.add_classpath_archive(build())
            with pytest.raises(StackOverflowSimError):
                vm.launch("tt.RecM")
            outcomes.append((vm.total_cycles, vm.instructions_retired,
                             vm.method_invocations))
        assert outcomes[0] == outcomes[1]


class TestDeopt:
    def _cold_branch_app(self):
        # `flag` is only read once i reaches 55 — after the template is
        # installed (threshold 5), so the GETSTATIC site is unquickened
        # inside translated code and must deoptimize exactly once
        def build():
            c = ClassAssembler("tt.Cold")
            c.field("flag", static=True, default=100)
            with c.method("work", "(I)I", static=True) as m:
                m.iload(0).ldc(55).if_icmpne("plain")
                m.getstatic("tt.Cold", "flag").ireturn()
                m.label("plain")
                m.iload(0).ireturn()

            def body(m):
                m.iconst(0).istore(0)
                m.iconst(0).istore(1)
                m.label("t")
                m.iload(1).ldc(60).if_icmpge("e")
                m.iload(1).invokestatic("tt.Cold", "work", "(I)I")
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("tt.ColdM", body))

        return build

    def test_cold_site_deopts_once_then_heals(self):
        vm = _assert_parity(self._cold_branch_app(), "tt.ColdM")
        # two once-then-heal deopts: work's unquickened GETSTATIC at
        # i == 55, plus main's epilogue (OSR enters main's template
        # mid-loop, so the never-yet-executed print path is cold)
        assert vm.jit.template_deopts.get("cold_site") == 2
        # the site quickened during reinterpretation; the template kept
        # running afterwards (no invalidation)
        method = vm.loader.loaded_class("tt.Cold").find_declared(
            "work", "(I)I")
        assert method.template is not None
        assert vm.jit.code_cache.invalidated == 0

    def test_cold_site_value_correct(self):
        vm = _run_tiered(self._cold_branch_app()(), "tt.ColdM", True)
        # sum(0..59) with 55 replaced by flag=100
        assert vm.console[-1] == str(sum(range(60)) - 55 + 100)

    def test_repeated_deopt_invalidates_template(self):
        # force an always-deopting template by excluding IMUL from the
        # supported set, then drive it past the disable threshold
        def build():
            return _hot_loop_app(100)()

        config = VMConfig(jit_policy=JitPolicy(
            template_tier=True, template_deopt_disable_threshold=3,
            **HOT))
        vm = create_vm(config)
        vm.loader.add_classpath_archive(build())

        original = translate

        def crippled(method, target_vm, policy=None,
                     exclude_ops=frozenset()):
            return original(method, target_vm, policy=policy,
                            exclude_ops=frozenset({int(Op.IMUL)}))

        import repro.jit.compiler as compiler_module
        compiler_module.translate = crippled
        try:
            vm.launch("tt.Main")
        finally:
            compiler_module.translate = original
        assert vm.jit.template_deopts.get(
            "unsupported_op:imul", 0) >= 3
        assert vm.jit.code_cache.invalidated == 1
        method = vm.loader.loaded_class("tt.Hot").find_declared(
            "work", "(I)I")
        assert method.template is None
        # correctness unharmed: every deopt reinterpreted the frame
        assert vm.console[-1] == _run_tiered(
            build(), "tt.Main", False).console[-1]

    def test_translator_bailout_is_counted(self):
        # an over-long method must bail with reason "too_long" and be
        # visible in the bail-out counters (no silent fallback)
        def build():
            c = ClassAssembler("tt.Long")
            with c.method("big", "(I)I", static=True) as m:
                m.iload(0)
                for _ in range(30):
                    m.iconst(1).iadd()
                m.ireturn()

            def body(m):
                m.iconst(0).istore(0)
                m.iconst(0).istore(1)
                m.label("t")
                m.iload(1).ldc(20).if_icmpge("e")
                m.iload(1).invokestatic("tt.Long", "big", "(I)I")
                m.iload(0).iadd().istore(0)
                m.iinc(1, 1).goto("t")
                m.label("e")
                m.iload(0)

            return build_app(c, expr_main("tt.LongM", body))

        vm = _run_tiered(build(), "tt.LongM", True,
                         template_code_limit=10)
        assert vm.jit.template_bailouts.get("too_long", 0) >= 1
        method = vm.loader.loaded_class("tt.Long").find_declared(
            "big", "(I)I")
        assert method.compiled and method.template is None


class TestJvmtiInteraction:
    def test_method_event_veto_blocks_templates(self):
        # SPA requests entry/exit events -> JIT veto -> no templates;
        # templates therefore never need to emulate entry/exit events
        from repro.agents.spa import SPA

        vm = run_main(_hot_loop_app(200)(), "tt.Main", agents=[SPA()],
                      config=VMConfig(jit_policy=JitPolicy(
                          template_tier=True, **HOT)))
        assert vm.jit.vetoed
        assert vm.jit.templates_translated == 0
        assert vm.jit.template_entries == 0

    def test_method_exit_events_identical_across_tiers(self):
        from repro.agents.counting import CountingAgent

        counts = []
        for tier in (True, False):
            vm = run_main(_hot_loop_app(200)(), "tt.Main",
                          agents=[CountingAgent()],
                          config=VMConfig(jit_policy=JitPolicy(
                              template_tier=tier, **HOT)))
            counts.append(dict(vm.jvmti.dispatch_counts))
        assert counts[0] == counts[1]


class TestMetricsExport:
    def test_tier_counters_reach_metrics_registry(self):
        from repro.harness.runner import _record_run_metrics
        from repro.observability import ObservabilityConfig
        from repro.observability.sink import ObservabilitySink

        vm = _run_tiered(self._deopting_app(), "tt.ColdM", True)
        sink = ObservabilitySink(ObservabilityConfig(metrics=True))
        _record_run_metrics(sink, vm, 0.0)
        counters = {record["name"]: record["value"]
                    for record in sink.metrics.as_records()
                    if record["type"] == "counter"}
        assert counters["jit_templates_translated"] >= 1
        assert counters["jit_template_entries"] > 0
        # 2: work's cold GETSTATIC + OSR-entered main's cold epilogue
        assert counters["jit_template_deopt_cold_site"] == 2
        assert counters["inline_cache_hits"] == vm.ic_hits
        assert counters["inline_cache_misses"] == vm.ic_misses

    @staticmethod
    def _deopting_app():
        return TestDeopt()._cold_branch_app()()


class TestCliTier:
    def test_table1_interp_tier_matches_golden(self, capsys):
        # the default (template) run is pinned by test_golden_tables;
        # --tier interp must produce the same bytes
        from repro.cli import main

        assert main(["table1", "--tier", "interp"]) == 0
        out = capsys.readouterr().out
        assert out == (RESULTS / "table1.txt").read_text()


class TestMonitorsAndDeadlock:
    """The dynamic deadlock detector, driven from *templated* monitor
    bytecodes.

    The scheduler PR pinned contended MONITORENTER, non-owner
    MONITOREXIT and the structured ``DeadlockError`` report on the
    interpreter; these tests re-pin the same contracts when the
    monitor opcodes execute inside translated templates (hot methods,
    low thresholds), covering both the scheduled and the sequential
    template variants."""

    def _grab_app(self):
        """Warm a monitor-wrapping helper past the invoke threshold,
        then call it on a lock another thread still owns."""
        h = ClassAssembler("tm.Holder", super_name="java.lang.Thread")
        h.field("lock")
        with h.method("<init>", "(Ljava.lang.Object;)V") as m:
            m.aload(0).aload(1).putfield("tm.Holder", "lock")
            m.return_()
        with h.method("run", "()V") as m:
            # acquire and return still holding the monitor
            m.aload(0).getfield("tm.Holder", "lock").monitorenter()
            m.return_()
        c = ClassAssembler("tm.Main")
        with c.method("grab", "(Ljava.lang.Object;)V", static=True) as m:
            m.aload(0).monitorenter()
            m.aload(0).monitorexit()
            m.return_()
        with c.method("main", "()V", static=True) as m:
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.iconst(0).istore(1)
            m.label("warm")
            m.iload(1).ldc(20).if_icmpge("warmed")
            m.aload(0).invokestatic("tm.Main", "grab",
                                    "(Ljava.lang.Object;)V")
            m.iinc(1, 1).goto("warm")
            m.label("warmed")
            m.new("tm.Holder").dup().aload(0)
            m.invokespecial("tm.Holder", "<init>",
                            "(Ljava.lang.Object;)V").astore(2)
            m.aload(2).invokevirtual("tm.Holder", "start", "()V")
            m.aload(2).invokevirtual("tm.Holder", "join", "()V")
            m.aload(0).invokestatic("tm.Main", "grab",
                                    "(Ljava.lang.Object;)V")
            m.return_()
        return build_app(h, c)

    def test_sequential_contended_enter_from_template(self):
        # cores=1: a templated MONITORENTER on a held monitor must
        # raise the detector's structured report, same as the
        # interpreter path
        from repro.errors import DeadlockError

        vm = create_vm(VMConfig(jit_policy=JitPolicy(
            template_tier=True, **HOT)))
        with pytest.raises(DeadlockError) as excinfo:
            run_main(self._grab_app(), "tm.Main", vm=vm)
        assert excinfo.value.cycle, "cycle must name the wait-for edges"
        assert any("monitor" in resource
                   for _, resource, _ in excinfo.value.cycle)
        grab = vm.loader.loaded_class("tm.Main").find_declared(
            "grab", "(Ljava.lang.Object;)V")
        assert grab.template is not None
        assert vm.jit.template_entries > 0

    def _imse_app(self, calls):
        """Hot helper whose MONITOREXIT past count zero must raise the
        *Java* exception from inside the template, caught by its own
        bytecode handler."""
        c = ClassAssembler("tm.Imse")
        with c.method("poke", "()I", static=True) as m:
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.aload(0).monitorenter()
            m.aload(0).monitorexit()
            m.label("try_start")
            m.aload(0).monitorexit()
            m.label("try_end")
            m.iconst(0).ireturn()
            m.label("handler")
            m.pop()
            m.iconst(1).ireturn()
            m.try_catch("try_start", "try_end", "handler",
                        "java.lang.IllegalMonitorStateException")

        def body(m):
            m.iconst(0).istore(0)
            m.iconst(0).istore(1)
            m.label("t")
            m.iload(1).ldc(calls).if_icmpge("e")
            m.invokestatic("tm.Imse", "poke", "()I")
            m.iload(0).iadd().istore(0)
            m.iinc(1, 1).goto("t")
            m.label("e")
            m.iload(0)

        return build_app(c, expr_main("tm.ImseM", body))

    def test_imse_from_template_is_catchable_java_exception(self):
        vm = _assert_parity(lambda: self._imse_app(60), "tm.ImseM")
        assert vm.console[-1] == "60"
        poke = vm.loader.loaded_class("tm.Imse").find_declared(
            "poke", "()I")
        assert poke.template is not None
        assert not vm.thread_deaths

    def _contended_app(self):
        """Two threads serialize a long critical section inside a hot
        (templated) method."""
        c = ClassAssembler("tm.Locker", super_name="java.lang.Thread")
        c.field("lock")
        c.field("done", default=0)
        with c.method("<init>", "(Ljava.lang.Object;)V") as m:
            m.aload(0).aload(1).putfield("tm.Locker", "lock")
            m.return_()
        with c.method("bump", "()V") as m:
            m.aload(0).getfield("tm.Locker", "lock").monitorenter()
            m.iconst(0).istore(1)
            m.label("spin")
            m.iload(1).ldc(2000).if_icmpge("out")
            m.iinc(1, 1).goto("spin")
            m.label("out")
            m.aload(0).getfield("tm.Locker", "lock").monitorexit()
            m.return_()
        with c.method("run", "()V") as m:
            m.iconst(0).istore(1)
            m.label("loop")
            m.iload(1).ldc(12).if_icmpge("done")
            m.aload(0).invokevirtual("tm.Locker", "bump", "()V")
            m.iinc(1, 1).goto("loop")
            m.label("done")
            m.aload(0).iconst(1).putfield("tm.Locker", "done")
            m.return_()
        main_c = ClassAssembler("tm.Main")
        with main_c.method("main", "()V", static=True) as m:
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            for slot in (1, 2):
                m.new("tm.Locker").dup().aload(0)
                m.invokespecial("tm.Locker", "<init>",
                                "(Ljava.lang.Object;)V")
                m.astore(slot)
            for slot in (1, 2):
                m.aload(slot).invokevirtual("tm.Locker", "start", "()V")
            for slot in (1, 2):
                m.aload(slot).invokevirtual("tm.Locker", "join", "()V")
            m.getstatic("java.lang.System", "out")
            m.aload(1).getfield("tm.Locker", "done")
            m.aload(2).getfield("tm.Locker", "done").iadd()
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.return_()
        return build_app(c, main_c)

    def test_contended_enter_from_template_blocks_and_hands_over(self):
        # cores=2: templated MONITORENTER on a held monitor must park
        # the thread and take the handover, not crash; cycle parity
        # with the interpreter must hold throughout
        vms = []
        for tier in (True, False):
            vm = run_main(self._contended_app(), "tm.Main",
                          config=VMConfig(cores=2,
                                          jit_policy=JitPolicy(
                                              template_tier=tier,
                                              **HOT)))
            assert vm.console[-1] == "2"
            assert vm.scheduler.monitor_contentions >= 1
            assert vm.scheduler.deadlocks_detected == 0
            vms.append(vm)
        templated, interp = vms
        assert templated.total_cycles == interp.total_cycles
        assert templated.console == interp.console
        bump = templated.loader.loaded_class("tm.Locker").find_declared(
            "bump", "()V")
        assert bump.template is not None
        assert interp.jit.template_entries == 0

    def test_non_owner_exit_from_template_under_scheduler(self):
        # cores=2: templated MONITOREXIT of a monitor owned by another
        # thread must raise the catchable Java exception
        h = ClassAssembler("tm.Spinner", super_name="java.lang.Thread")
        h.field("lock")
        with h.method("<init>", "(Ljava.lang.Object;)V") as m:
            m.aload(0).aload(1).putfield("tm.Spinner", "lock")
            m.return_()
        with h.method("run", "()V") as m:
            m.aload(0).getfield("tm.Spinner", "lock").monitorenter()
            m.iconst(0).istore(1)
            m.label("spin")
            m.iload(1).ldc(200000).if_icmpge("out")
            m.iinc(1, 1).goto("spin")
            m.label("out")
            m.aload(0).getfield("tm.Spinner", "lock").monitorexit()
            m.return_()
        c = ClassAssembler("tm.Main")
        with c.method("drop", "(Ljava.lang.Object;)I", static=True) as m:
            m.label("try_start")
            m.aload(0).monitorexit()
            m.label("try_end")
            m.iconst(0).ireturn()
            m.label("handler")
            m.pop()
            m.iconst(1).ireturn()
            m.try_catch("try_start", "try_end", "handler",
                        "java.lang.IllegalMonitorStateException")
        with c.method("main", "()V", static=True) as m:
            # warm drop() past the threshold on an unowned object (the
            # exit-without-enter IMSE arm), then hit the held monitor
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.iconst(0).istore(1)
            m.label("warm")
            m.iload(1).ldc(20).if_icmpge("warmed")
            m.aload(0).invokestatic("tm.Main", "drop",
                                    "(Ljava.lang.Object;)I")
            m.pop()
            m.iinc(1, 1).goto("warm")
            m.label("warmed")
            m.new("tm.Spinner").dup().aload(0)
            m.invokespecial("tm.Spinner", "<init>",
                            "(Ljava.lang.Object;)V").astore(2)
            m.aload(2).invokevirtual("tm.Spinner", "start", "()V")
            # spin past a couple of quanta so the spinner owns the lock
            m.iconst(0).istore(1)
            m.label("wait")
            m.iload(1).ldc(120000).if_icmpge("go")
            m.iinc(1, 1).goto("wait")
            m.label("go")
            m.getstatic("java.lang.System", "out")
            m.aload(0).invokestatic("tm.Main", "drop",
                                    "(Ljava.lang.Object;)I")
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.aload(2).invokevirtual("tm.Spinner", "join", "()V")
            m.return_()
        vm = run_main(build_app(h, c), "tm.Main",
                      config=VMConfig(cores=2,
                                      jit_policy=JitPolicy(
                                          template_tier=True, **HOT)))
        assert vm.console[-1] == "1"
        assert not vm.thread_deaths
        drop = vm.loader.loaded_class("tm.Main").find_declared(
            "drop", "(Ljava.lang.Object;)I")
        assert drop.template is not None
