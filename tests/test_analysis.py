"""Static analysis subsystem: CFG, typed verifier, CHA call graph,
native-boundary analysis, instrumentation linter, and their VM/harness
wiring."""

import dataclasses

import pytest
from helpers import build_app, expr_main, run_main

from repro.analysis import (
    Severity,
    analyze_archives,
    analyze_class_types,
    analyze_method_types,
    build_call_graph,
    build_cfg,
    build_hierarchy,
    cross_check,
    lint_classfile,
    static_native_check,
    typed_verify_class,
)
from repro.analysis.boundary import analyze_boundary
from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import Op
from repro.classfile.constant_pool import CpMethodRef
from repro.errors import VerifyError
from repro.instrument.static_instr import instrument_archives_cached
from repro.instrument.wrapper_gen import InstrumentationConfig
from repro.jvm.machine import VMConfig
from repro.launcher import runtime_archive


def _class(body, descriptor="()V", name="m", class_name="t.C",
           verify=True, static=True):
    c = ClassAssembler(class_name)
    with c.method(name, descriptor, static=static) as m:
        body(m)
    return c.build(verify=verify)


def _typed_findings(body, descriptor="()V", verify=True):
    cf = _class(body, descriptor=descriptor, verify=verify)
    return analyze_method_types(cf.methods[0], cf.constant_pool, cf.name)


def _rules(findings, severity=None):
    return {f.rule for f in findings
            if severity is None or f.severity is severity}


# -- CFG ----------------------------------------------------------------------


def test_cfg_straight_line_is_one_block():
    cf = _class(lambda m: m.iconst(1).pop().return_())
    cfg = build_cfg(cf.methods[0].code, [])
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].successors == []


def test_cfg_branch_splits_blocks_and_wires_successors():
    def body(m):
        m.iconst(1).ifeq("skip")
        m.iconst(2).pop()
        m.label("skip")
        m.return_()
    cf = _class(body)
    cfg = build_cfg(cf.methods[0].code, [])
    # entry (cond), fallthrough, join
    assert len(cfg.blocks) == 3
    entry = cfg.blocks[0]
    assert sorted(entry.successors) == [1, 2]
    assert all(b in {blk.index for blk in cfg.reachable_blocks()}
               for b in range(3))


def test_cfg_marks_handler_blocks_and_exception_reachability():
    def body(m):
        m.label("try")
        m.iconst(1).pop()
        m.label("end")
        m.return_()
        m.label("handler")
        m.athrow()
        m.try_catch("try", "end", "handler")
    cf = _class(body)
    method = cf.methods[0]
    cfg = build_cfg(method.code, method.exception_table)
    handlers = cfg.handler_blocks
    assert len(handlers) == 1
    assert handlers[0].is_handler
    # the handler is reachable only through the exception edge
    assert handlers[0].index in {b.index for b in cfg.reachable_blocks()}


def test_cfg_unreachable_block_detection():
    def body(m):
        m.goto("end")
        m.iconst(1).pop()   # dead
        m.label("end")
        m.return_()
    cf = _class(body)
    cfg = build_cfg(cf.methods[0].code, [])
    assert len(cfg.unreachable_blocks()) == 1


# -- typed verifier: clean code ------------------------------------------------


def test_typed_verifier_accepts_clean_method():
    def body(m):
        m.iconst(2).istore(0)
        m.iload(0).iconst(3).iadd().ireturn()
    assert _typed_findings(body, descriptor="()I") == []


def test_typed_verifier_accepts_float_int_polymorphism():
    # I-family arithmetic is polymorphic: int + float is legal
    def body(m):
        m.ldc(1.5).iconst(2).iadd().f2i().ireturn()
    assert _typed_findings(body, descriptor="()I") == []


def test_typed_verifier_accepts_runtime_library():
    report = analyze_archives([runtime_archive()]).report
    assert report.ok
    assert report.methods_analyzed > 50


# -- typed verifier: adversarial classes --------------------------------------


def test_typed_verifier_flags_ref_used_as_number():
    def body(m):
        m.aconst_null().iconst(1).iadd().pop().return_()
    findings = _typed_findings(body)
    assert "type-confusion" in _rules(findings, Severity.ERROR)


def test_typed_verifier_flags_number_used_as_ref():
    def body(m):
        m.iconst(7).athrow()
    findings = _typed_findings(body)
    assert "type-confusion" in _rules(findings, Severity.ERROR)


def test_typed_verifier_flags_type_confusion_at_join():
    # one path leaves an int on the stack, the other a reference;
    # the join value is then thrown (a ref use)
    def body(m):
        m.iload(0).ifeq("other")
        m.iconst(1).goto("join")
        m.label("other")
        m.aconst_null()
        m.label("join")
        m.athrow()
    findings = _typed_findings(body, descriptor="(I)V")
    assert "type-confusion" in _rules(findings, Severity.ERROR)


def test_typed_verifier_flags_local_type_conflict_at_join():
    # local 1 is an int on one path, a reference on the other
    def body(m):
        m.iload(0).ifeq("other")
        m.iconst(1).istore(1).goto("join")
        m.label("other")
        m.aconst_null().astore(1)
        m.label("join")
        m.iload(1).pop().return_()
    findings = _typed_findings(body, descriptor="(I)V")
    assert "type-confusion" in _rules(findings, Severity.ERROR)


def test_typed_verifier_flags_definite_uninitialized_use():
    def body(m):
        m.iload(1).pop().return_()   # local 1 never written
    findings = _typed_findings(body, descriptor="(I)V")
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert _rules(errors) == {"uninitialized-value"}
    assert errors[0].pc == 0


def test_typed_verifier_warns_maybe_uninitialized_use():
    # assignment happens only on one branch — a warning, not an error
    # (real loop idioms make the definite case unprovable)
    def body(m):
        m.iload(0).ifeq("skip")
        m.iconst(1).istore(1)
        m.label("skip")
        m.iload(1).pop().return_()
    findings = _typed_findings(body, descriptor="(I)V")
    assert _rules(findings, Severity.ERROR) == set()
    warnings = [f for f in findings if f.severity is Severity.WARNING]
    assert "uninitialized-value" in _rules(warnings)


def test_typed_verifier_flags_stack_depth_merge_conflict():
    # two paths reach the join with different stack depths; built
    # unverified because the structural pass rejects it too
    def body(m):
        m.iload(0).ifeq("other")
        m.iconst(1).iconst(2).goto("join")
        m.label("other")
        m.iconst(3)
        m.label("join")
        m.pop().return_()
    findings = _typed_findings(body, descriptor="(I)V", verify=False)
    assert "stack-merge" in _rules(findings, Severity.ERROR)


def test_typed_verifier_flags_stack_underflow():
    def body(m):
        m.pop().return_()
    findings = _typed_findings(body, verify=False)
    assert "stack-underflow" in _rules(findings, Severity.ERROR)


def test_typed_verifier_handler_entry_stack_is_the_thrown_ref():
    # inside the handler the stack is [ref]: adding to it is confusion
    def body(m):
        m.label("try")
        m.iconst(1).pop()
        m.label("end")
        m.return_()
        m.label("handler")
        m.iconst(1).iadd().pop().return_()   # ref + int
        m.try_catch("try", "end", "handler")
    findings = _typed_findings(body)
    assert "type-confusion" in _rules(findings, Severity.ERROR)


def test_typed_verifier_handler_sees_locals_from_protected_range():
    # local 1 is written inside the protected range before anything can
    # throw, but the handler may also be entered from the instruction
    # *before* the store — so its use in the handler is maybe-uninit
    def body(m):
        m.label("try")
        m.iconst(1).pop()            # can throw? no — but it is covered
        m.iconst(5).istore(1)
        m.iconst(1).pop()
        m.label("end")
        m.return_()
        m.label("handler")
        m.pop()
        m.iload(1).pop().return_()
        m.try_catch("try", "end", "handler")
    findings = _typed_findings(body)
    assert _rules(findings, Severity.ERROR) == set()
    assert "uninitialized-value" in _rules(findings, Severity.WARNING)


def test_typed_verifier_warns_unreachable_code():
    def body(m):
        m.goto("end")
        m.iconst(1).pop()
        m.label("end")
        m.return_()
    findings = _typed_findings(body)
    assert "unreachable-code" in _rules(findings, Severity.WARNING)
    assert _rules(findings, Severity.ERROR) == set()


def test_typed_verify_class_raises_structured_error():
    cf = _class(lambda m: m.iconst(7).athrow(), class_name="t.Bad")
    with pytest.raises(VerifyError) as info:
        typed_verify_class(cf)
    err = info.value
    assert err.class_name == "t.Bad"
    assert err.method == "m()V"
    assert err.pc is not None
    assert "t.Bad" in str(err)


def test_typed_verify_class_counts_methods():
    cf = _class(lambda m: m.return_())
    assert typed_verify_class(cf) == 1


def test_analyze_class_types_includes_structural_failures():
    cf = _class(lambda m: m.pop().return_(), verify=False)
    report = analyze_class_types(cf)
    assert not report.ok
    assert "structural" in {f.rule for f in report.errors}


# -- fuzz round-trip -----------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_template_fuzz_classes_pass_typed_verification(seed):
    from test_template_fuzz import _generated_app

    archive = _generated_app(seed)
    for cf in archive.classes():
        assert typed_verify_class(cf) >= 1


def test_template_fuzz_runs_identically_under_typed_verify():
    from test_template_fuzz import _generated_app

    vm_off = run_main(_generated_app(3), "fz.Main",
                      config=VMConfig(verify="off"))
    vm_typed = run_main(_generated_app(3), "fz.Main",
                        config=VMConfig(verify="typed"))
    assert vm_off.console == vm_typed.console
    assert vm_off.total_cycles == vm_typed.total_cycles
    assert vm_typed.methods_verified > 0
    assert vm_off.methods_verified == 0


# -- CHA call graph ------------------------------------------------------------


def _hierarchy_app():
    base = ClassAssembler("t.Base")
    with base.method("work", "()I") as m:
        m.iconst(1).ireturn()
    sub = ClassAssembler("t.Sub", super_name="t.Base")
    with sub.method("work", "()I") as m:
        m.iconst(2).ireturn()
    other = ClassAssembler("t.Other", super_name="t.Base")
    # t.Other inherits work()I without overriding
    with other.method("idle", "()V") as m:
        m.return_()
    main = ClassAssembler("t.Main")
    with main.method("main", "()V", static=True) as m:
        m.new("t.Base")
        m.invokevirtual("t.Base", "work", "()I")
        m.pop().return_()
    return build_app(base, sub, other, main)


def test_cha_virtual_site_expands_to_overrides():
    graph = build_call_graph(build_hierarchy([_hierarchy_app()]))
    site = next(s for s in graph.call_sites
                if s.op is Op.INVOKEVIRTUAL)
    assert set(site.targets) == {"t.Base.work()I", "t.Sub.work()I"}


def test_cha_static_resolution_walks_superclasses():
    hierarchy = build_hierarchy([_hierarchy_app()])
    owner, method = hierarchy.resolve("t.Other", "work", "()I")
    assert owner == "t.Base" and method.name == "work"
    assert hierarchy.subclasses("t.Base") == {"t.Sub", "t.Other"}


def test_cha_entry_points_and_reachability():
    graph = build_call_graph(build_hierarchy([_hierarchy_app()]))
    assert "t.Main.main()V" in graph.entry_points
    reachable = graph.reachable()
    assert "t.Base.work()I" in reachable
    assert "t.Sub.work()I" in reachable       # CHA cone
    assert "t.Other.idle()V" not in reachable  # never called


def test_cha_unresolved_site_reported_as_info():
    c = ClassAssembler("t.Lost")
    with c.method("main", "()V", static=True) as m:
        m.invokestatic("t.Nowhere", "gone", "()V")
        m.return_()
    result = analyze_archives([build_app(c)])
    assert "unresolved-call" in {f.rule for f in result.report.findings
                                 if f.severity is Severity.INFO}
    assert result.report.ok  # infos do not gate


# -- native boundary -----------------------------------------------------------


def _native_app():
    c = ClassAssembler("t.Nat")
    c.native_method("zap", "()V", static=True)
    c.native_method("cold", "()V", static=True)   # never called
    with c.method("main", "()V", static=True) as m:
        m.invokestatic("t.Nat", "zap", "()V")
        m.return_()
    return build_app(c)


def test_boundary_declared_reachable_and_sites():
    graph = build_call_graph(build_hierarchy([_native_app()]))
    boundary = analyze_boundary(graph)
    assert boundary.declared_natives == {"t.Nat.zap()V", "t.Nat.cold()V"}
    assert boundary.reachable_natives == {"t.Nat.zap()V"}
    assert boundary.unreachable_natives == {"t.Nat.cold()V"}
    assert len(boundary.j2n_sites) == 1
    assert boundary.j2n_sites[0].targets == ["t.Nat.zap()V"]
    # non-native methods of a native-declaring class are N2J candidates
    assert "t.Nat.main()V" in boundary.n2j_candidates


def test_boundary_cross_check_superset_and_violation():
    graph = build_call_graph(build_hierarchy([_native_app()]))
    boundary = analyze_boundary(graph)
    ok = cross_check(boundary, ["t.Nat.zap()V"])
    assert ok.ok and ok.covered == {"t.Nat.zap()V"}
    assert ok.uncovered == {"t.Nat.cold()V"}
    assert 0.0 < ok.coverage < 1.0
    bad = cross_check(boundary, ["t.Nat.zap()V", "t.Ghost.boo()V"])
    assert not bad.ok and bad.violations == {"t.Ghost.boo()V"}


def test_boundary_cross_check_normalizes_instrumented_names():
    config = InstrumentationConfig()
    graph = build_call_graph(build_hierarchy([_native_app()]))
    boundary = analyze_boundary(graph)
    dynamic = [f"t.Nat.{config.prefix}zap()V",         # renamed native
               f"{config.runtime_class}.J2N_Begin()V"]  # agent runtime
    check = cross_check(boundary, dynamic, config)
    assert check.ok
    assert check.covered == {"t.Nat.zap()V"}


def test_static_boundary_is_superset_of_dynamic_for_real_workload():
    from repro.harness.config import AgentSpec, RunConfig
    from repro.harness.runner import execute
    from repro.workloads import get_workload

    workload = get_workload("compress")
    result = execute(workload, RunConfig(agent=AgentSpec.none()))
    assert result.native_methods_invoked, "run resolved no natives?"
    check = static_native_check([runtime_archive(), workload.archive],
                                result.native_methods_invoked)
    assert check.ok, f"dynamic-only natives: {check.violations}"


# -- instrumentation linter ----------------------------------------------------


def _instrumented_runtime(config):
    archives, _ = instrument_archives_cached([runtime_archive()], config)
    return archives[0]


def _find_wrapper(archive, config):
    for cf in archive.classes():
        for method in cf.methods:
            if method.code is None or \
                    method.name.startswith(config.prefix):
                continue
            if cf.find_method(config.prefix + method.name,
                              method.descriptor) is not None:
                return cf, method
    raise AssertionError("no instrumented wrapper found")


def test_linter_passes_freshly_instrumented_archive():
    config = InstrumentationConfig()
    archive = _instrumented_runtime(config)
    for cf in archive.classes():
        assert lint_classfile(cf, config) == []


def test_linter_flags_missing_j2n_end():
    config = InstrumentationConfig()
    archive = _instrumented_runtime(config)
    cf, wrapper = _find_wrapper(archive, config)
    for pc, ins in enumerate(wrapper.code):
        if ins.op is Op.INVOKESTATIC:
            ref = cf.constant_pool.get_typed(ins.operand, CpMethodRef)
            if ref.method_name == config.end_method:
                del wrapper.code[pc]
                wrapper.exception_table = [
                    dataclasses.replace(
                        entry,
                        handler=entry.handler - 1
                        if entry.handler > pc else entry.handler)
                    for entry in wrapper.exception_table]
                break
    rules = {f.rule for f in lint_classfile(cf, config)
             if f.severity is Severity.ERROR}
    assert "missing-end" in rules


def test_linter_flags_missing_catch_all_handler():
    config = InstrumentationConfig()
    archive = _instrumented_runtime(config)
    cf, wrapper = _find_wrapper(archive, config)
    wrapper.exception_table = []
    rules = {f.rule for f in lint_classfile(cf, config)}
    assert "missing-handler" in rules


def test_linter_flags_stacked_prefixes():
    config = InstrumentationConfig()
    c = ClassAssembler("t.Twice")
    c.native_method(f"{config.prefix}{config.prefix}zap", "()V",
                    static=True)
    rules = {f.rule for f in lint_classfile(c.build(), config)}
    assert "double-instrumentation" in rules


def test_linter_flags_wrapper_that_lost_native_target():
    config = InstrumentationConfig()
    c = ClassAssembler("t.Lost")
    # renamed native exists but is no longer native
    with c.method(f"{config.prefix}zap", "()V", static=True) as m:
        m.return_()
    findings = lint_classfile(c.build(), config)
    rules = {f.rule for f in findings}
    assert "renamed-not-native" in rules
    assert "missing-wrapper" in rules


def test_linter_flags_uninstrumented_native():
    config = InstrumentationConfig()
    c = ClassAssembler("t.Bare")
    c.native_method("zap", "()V", static=True)
    rules = {f.rule for f in lint_classfile(c.build(), config)}
    assert "native-not-wrapped" in rules
    assert lint_classfile(c.build(), config,
                          require_instrumented=False) == []


def test_linter_flags_instrumented_excluded_class():
    config = InstrumentationConfig()
    c = ClassAssembler(config.runtime_class)
    c.native_method(f"{config.prefix}J2N_Begin", "()V", static=True)
    rules = {f.rule for f in lint_classfile(c.build(), config)}
    assert "excluded-class-instrumented" in rules


# -- classloader wiring --------------------------------------------------------


def test_classloader_fails_fast_on_structural_error():
    from repro.classfile.archive import ClassArchive
    from repro.classfile.serializer import dump_class

    c = ClassAssembler("t.BadS")
    with c.method("main", "()V", static=True) as m:
        m.pop().return_()
    archive = ClassArchive()
    archive.put_bytes("t.BadS", dump_class(c.build(verify=False)))

    with pytest.raises(VerifyError) as info:
        run_main(archive, "t.BadS")
    err = info.value
    assert err.class_name == "t.BadS"
    assert err.method == "main()V"
    assert err.pc == 0


def test_classloader_typed_mode_catches_what_structural_misses():
    from repro.classfile.archive import ClassArchive
    from repro.classfile.serializer import dump_class

    # balanced stack depths (structurally fine) but a ref is added to
    # an int — only the typed verifier rejects it.  The bad method is
    # never called, so structural mode loads *and* runs the class.
    c = ClassAssembler("t.BadT")
    with c.method("bad", "()V", static=True) as m:
        m.aconst_null().iconst(1).iadd().pop().return_()
    with c.method("main", "()V", static=True) as m:
        m.return_()
    data = dump_class(c.build(verify=True))   # structural pass accepts

    archive = ClassArchive()
    archive.put_bytes("t.BadT", data)
    run_main(archive, "t.BadT",
             config=VMConfig(verify="structural"))  # loads and runs

    archive2 = ClassArchive()
    archive2.put_bytes("t.BadT", data)
    with pytest.raises(VerifyError) as info:
        run_main(archive2, "t.BadT", config=VMConfig(verify="typed"))
    assert info.value.class_name == "t.BadT"


def test_vm_counts_verified_methods_and_invoked_natives():
    def body(m):
        m.iconst(5)
    _, vm = _run_expr_with(body, VMConfig(verify="structural"))
    assert vm.methods_verified > 0
    assert vm.native_methods_invoked  # println's native backend


def _run_expr_with(body, config):
    vm = run_main(build_app(expr_main("t.Expr", body)), "t.Expr",
                  config=config)
    return int(vm.console[-1]), vm


def test_verify_modes_have_identical_accounting():
    def body(m):
        m.iconst(0).istore(1)
        m.iconst(0).istore(2)
        m.label("loop")
        m.iload(2).ldc(200).if_icmpge("done")
        m.iload(1).iload(2).iadd().istore(1)
        m.iinc(2, 1).goto("loop")
        m.label("done")
        m.iload(1)
    results = {}
    for mode in ("off", "structural", "typed"):
        value, vm = _run_expr_with(body, VMConfig(verify=mode))
        results[mode] = (value, vm.total_cycles,
                         vm.instructions_retired)
    assert results["off"] == results["structural"] == results["typed"]


def test_unknown_verify_mode_is_rejected():
    from repro.errors import VMError

    with pytest.raises(VMError):
        run_main(build_app(expr_main("t.Expr", lambda m: m.iconst(1))),
                 "t.Expr", config=VMConfig(verify="paranoid"))


# -- harness wiring ------------------------------------------------------------


def test_table2_boundary_check_passes_on_workload():
    from repro.harness.statistics import build_table2
    from repro.workloads import get_workload

    table = build_table2([get_workload("db")], boundary_check=True)
    assert table.boundary is not None
    check = table.boundary["db"]
    assert check.ok
    assert check.covered  # the run really hit natives
    summary = check.summary()
    assert "OK" in summary and "declared natives" in summary


# -- CLI ----------------------------------------------------------------------


def test_cli_analyze_clean_runtime_exits_zero(capsys):
    from repro.cli import main

    assert main(["analyze"]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out
    assert "native boundary:" in out


def test_cli_analyze_check_instrumentation_passes(capsys):
    from repro.cli import main

    assert main(["analyze", "--workload", "db",
                 "--check-instrumentation"]) == 0
    assert "0 errors" in capsys.readouterr().out


def test_cli_analyze_fails_on_corrupted_wrapper(tmp_path, capsys):
    from repro.cli import main
    from repro.classfile.archive import ClassArchive
    from repro.classfile.serializer import dump_class

    config = InstrumentationConfig()
    archive = _instrumented_runtime(config)
    cf, wrapper = _find_wrapper(archive, config)
    # strip the bracketing entirely: no J2N_End after the native call
    wrapper.exception_table = []
    for pc, ins in enumerate(wrapper.code):
        if ins.op is Op.INVOKESTATIC:
            ref = cf.constant_pool.get_typed(ins.operand, CpMethodRef)
            if ref.method_name == config.end_method:
                del wrapper.code[pc]
                break
    corrupted = ClassArchive()
    corrupted.put_bytes(cf.name, dump_class(cf))
    path = tmp_path / "corrupted.bin"
    corrupted.save(str(path))

    code = main(["analyze", "--no-runtime", "--archive", str(path),
                 "--check-instrumentation", "--format", "json"])
    assert code == 1
    out = capsys.readouterr().out
    assert "missing-end" in out or "missing-handler" in out


def test_cli_analyze_call_graph_export(tmp_path):
    import json

    from repro.cli import main

    out = tmp_path / "cg.json"
    assert main(["analyze", "--workload", "db",
                 "--call-graph", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["methods"] and doc["call_sites"]
    assert any(site["op"].startswith("invoke")
               for site in doc["call_sites"])


def test_cli_table2_verify_flag_accepted():
    from repro.cli import build_parser

    args = build_parser().parse_args(["table2", "--verify", "typed"])
    assert args.verify == "typed"
    args = build_parser().parse_args(["profile", "db", "--verify",
                                      "off"])
    assert args.verify == "off"
