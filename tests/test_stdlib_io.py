"""The simulated JDK natives: file streams, CRC32, strings, math,
Integer/Float helpers — exercised from bytecode end to end."""

import zlib

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind

from helpers import build_app, expr_main, run_expr, run_main


def _run_with_file(body, files, class_name="io.Main"):
    vm = run_main(build_app(expr_main(class_name, body)), class_name,
                  files=files)
    return int(vm.console[-1]), vm


class TestFileInput:
    def test_read_whole_file(self):
        payload = bytes(range(1, 11))

        def body(m):
            m.new("java.io.FileInputStream").dup().ldc("in.bin")
            m.invokespecial("java.io.FileInputStream", "<init>",
                            "(Ljava.lang.String;)V").astore(0)
            m.iconst(16).newarray(ArrayKind.BYTE).astore(1)
            m.aload(0).aload(1).iconst(0).iconst(16)
            m.invokevirtual("java.io.FileInputStream", "read",
                            "([BII)I")

        result, _ = _run_with_file(body, {"in.bin": payload})
        assert result == 10

    def test_read_past_eof_returns_minus_one(self):
        def body(m):
            m.new("java.io.FileInputStream").dup().ldc("in.bin")
            m.invokespecial("java.io.FileInputStream", "<init>",
                            "(Ljava.lang.String;)V").astore(0)
            m.iconst(8).newarray(ArrayKind.BYTE).astore(1)
            m.aload(0).aload(1).iconst(0).iconst(8)
            m.invokevirtual("java.io.FileInputStream", "read",
                            "([BII)I").pop()
            m.aload(0).aload(1).iconst(0).iconst(8)
            m.invokevirtual("java.io.FileInputStream", "read",
                            "([BII)I")

        result, _ = _run_with_file(body, {"in.bin": b"abc"},
                                   "io.Eof")
        assert result == -1

    def test_single_byte_reads_and_available(self):
        def body(m):
            m.new("java.io.FileInputStream").dup().ldc("in.bin")
            m.invokespecial("java.io.FileInputStream", "<init>",
                            "(Ljava.lang.String;)V").astore(0)
            m.aload(0).invokevirtual("java.io.FileInputStream",
                                     "read", "()I").pop()
            m.aload(0).invokevirtual("java.io.FileInputStream",
                                     "available", "()I")

        result, _ = _run_with_file(body, {"in.bin": b"xyz"},
                                   "io.One")
        assert result == 2

    def test_missing_file_throws_file_not_found(self):
        def body(m):
            m.label("try")
            m.new("java.io.FileInputStream").dup().ldc("ghost.bin")
            m.invokespecial("java.io.FileInputStream", "<init>",
                            "(Ljava.lang.String;)V").pop()
            m.label("try_end")
            m.iconst(0).goto("end")
            m.label("h")
            m.instanceof("java.io.FileNotFoundException")
            m.label("end")
            m.try_catch("try", "try_end", "h", None)

        # handler clears the stack, so wrap in a helper method
        c = ClassAssembler("io.Miss")
        with c.method("attempt", "()I", static=True) as m:
            body(m)
            m.ireturn()
        main = expr_main("io.MissMain", lambda m: m.invokestatic(
            "io.Miss", "attempt", "()I"))
        vm = run_main(build_app(c, main), "io.MissMain")
        assert vm.console[-1] == "1"


class TestFileOutput:
    def test_write_creates_file(self):
        def body(m):
            m.iconst(4).newarray(ArrayKind.BYTE).astore(0)
            for i, value in enumerate((65, 66, 67, 68)):
                m.aload(0).iconst(i).iconst(value).iastore()
            m.new("java.io.FileOutputStream").dup().ldc("out.bin")
            m.invokespecial("java.io.FileOutputStream", "<init>",
                            "(Ljava.lang.String;)V").astore(1)
            m.aload(1).aload(0).iconst(0).iconst(4)
            m.invokevirtual("java.io.FileOutputStream", "write",
                            "([BII)V")
            m.aload(1).invokevirtual("java.io.FileOutputStream",
                                     "close", "()V")
            m.iconst(1)

        _, vm = _run_with_file(body, {}, "io.Out")
        assert bytes(vm.files["out.bin"]) == b"ABCD"

    def test_negative_bytes_written_unsigned(self):
        def body(m):
            m.iconst(1).newarray(ArrayKind.BYTE).astore(0)
            m.aload(0).iconst(0).iconst(-1).iastore()
            m.new("java.io.FileOutputStream").dup().ldc("neg.bin")
            m.invokespecial("java.io.FileOutputStream", "<init>",
                            "(Ljava.lang.String;)V").astore(1)
            m.aload(1).aload(0).iconst(0).iconst(1)
            m.invokevirtual("java.io.FileOutputStream", "write",
                            "([BII)V")
            m.iconst(1)

        _, vm = _run_with_file(body, {}, "io.Neg")
        assert bytes(vm.files["neg.bin"]) == b"\xff"


class TestCrc32:
    def test_matches_zlib(self):
        payload = b"hello crc world"

        def body(m):
            m.new("java.util.zip.CRC32").dup()
            m.invokespecial("java.util.zip.CRC32", "<init>", "()V")
            m.astore(0)
            m.iconst(len(payload)).newarray(ArrayKind.BYTE).astore(1)
            for i, value in enumerate(payload):
                m.aload(1).iconst(i).iconst(value).iastore()
            m.aload(0).aload(1).iconst(0).iconst(len(payload))
            m.invokevirtual("java.util.zip.CRC32", "update",
                            "([BII)V")
            m.aload(0).invokevirtual("java.util.zip.CRC32",
                                     "getValue", "()I")

        result, _ = run_expr(body, "crc.Main")
        assert result == zlib.crc32(payload)

    def test_reset(self):
        def body(m):
            m.new("java.util.zip.CRC32").dup()
            m.invokespecial("java.util.zip.CRC32", "<init>", "()V")
            m.astore(0)
            m.iconst(3).newarray(ArrayKind.BYTE).astore(1)
            m.aload(0).aload(1).iconst(0).iconst(3)
            m.invokevirtual("java.util.zip.CRC32", "update", "([BII)V")
            m.aload(0).invokevirtual("java.util.zip.CRC32", "reset",
                                     "()V")
            m.aload(0).invokevirtual("java.util.zip.CRC32",
                                     "getValue", "()I")

        result, _ = run_expr(body, "crc.Reset")
        assert result == 0


class TestStringNatives:
    def test_substring_and_compare(self):
        def body(m):
            m.ldc("hello world").iconst(6).ldc(11)
            m.invokevirtual("java.lang.String", "substring",
                            "(II)Ljava.lang.String;")
            m.ldc("world")
            m.invokevirtual("java.lang.String", "equals",
                            "(Ljava.lang.Object;)I")

        result, _ = run_expr(body, "str.Sub")
        assert result == 1

    def test_index_of_and_char_at(self):
        def body(m):
            m.ldc("abcabc").iconst(ord("c")).iconst(3)
            m.invokevirtual("java.lang.String", "indexOf", "(II)I")

        result, _ = run_expr(body, "str.Idx")
        assert result == 5

    def test_compare_to_ordering(self):
        def body(m):
            m.ldc("apple").ldc("banana")
            m.invokevirtual("java.lang.String", "compareTo",
                            "(Ljava.lang.String;)I")

        result, _ = run_expr(body, "str.Cmp")
        assert result == -1

    def test_to_char_array_roundtrip(self):
        def body(m):
            m.ldc("ring")
            m.invokevirtual("java.lang.String", "toCharArray", "()[C")
            m.astore(0)
            m.aload(0).iconst(0).aload(0).arraylength()
            m.invokestatic("java.lang.String", "fromChars",
                           "([CII)Ljava.lang.String;")
            m.ldc("ring")
            m.invokevirtual("java.lang.String", "equals",
                            "(Ljava.lang.Object;)I")

        result, _ = run_expr(body, "str.Rt")
        assert result == 1

    def test_hash_matches_java_semantics(self):
        def body(m):
            m.ldc("Aa")
            m.invokevirtual("java.lang.String", "hashCode", "()I")

        result, _ = run_expr(body, "str.Hash")
        assert result == ord("A") * 31 + ord("a")

    def test_string_char_at_bounds(self):
        c = ClassAssembler("str.Bounds")
        with c.method("attempt", "()I", static=True) as m:
            m.label("try")
            m.ldc("ab").iconst(9)
            m.invokevirtual("java.lang.String", "charAt", "(I)I")
            m.label("try_end")
            m.pop().iconst(0).ireturn()
            m.label("h")
            m.instanceof("java.lang.ArrayIndexOutOfBoundsException")
            m.ireturn()
            m.try_catch("try", "try_end", "h", None)
        main = expr_main("str.BoundsMain", lambda m: m.invokestatic(
            "str.Bounds", "attempt", "()I"))
        vm = run_main(build_app(c, main), "str.BoundsMain")
        assert vm.console[-1] == "1"


class TestNumericNatives:
    def test_parse_int(self):
        def body(m):
            m.ldc("  -1234 ")
            m.invokestatic("java.lang.Integer", "parseInt",
                           "(Ljava.lang.String;)I")

        result, _ = run_expr(body, "num.Parse")
        assert result == -1234

    def test_parse_int_failure_throws(self):
        c = ClassAssembler("num.Bad")
        with c.method("attempt", "()I", static=True) as m:
            m.label("try")
            m.ldc("xyz")
            m.invokestatic("java.lang.Integer", "parseInt",
                           "(Ljava.lang.String;)I")
            m.label("try_end")
            m.pop().iconst(0).ireturn()
            m.label("h")
            m.instanceof("java.lang.NumberFormatException")
            m.ireturn()
            m.try_catch("try", "try_end", "h", None)
        main = expr_main("num.BadMain", lambda m: m.invokestatic(
            "num.Bad", "attempt", "()I"))
        vm = run_main(build_app(c, main), "num.BadMain")
        assert vm.console[-1] == "1"

    def test_float_bits_roundtrip(self):
        def body(m):
            m.ldc(1.5)
            m.invokestatic("java.lang.Float", "floatToIntBits",
                           "(F)I")
            m.invokestatic("java.lang.Float", "intBitsToFloat",
                           "(I)F")
            m.ldc(2.0).imul().f2i()

        result, _ = run_expr(body, "num.Bits")
        assert result == 3

    def test_math_sqrt(self):
        def body(m):
            m.ldc(144.0)
            m.invokestatic("java.lang.Math", "sqrt", "(F)F")
            m.f2i()

        result, _ = run_expr(body, "num.Sqrt")
        assert result == 12

    def test_current_time_millis_advances(self):
        def body(m):
            m.invokestatic("java.lang.System", "currentTimeMillis",
                           "()I")

        result, vm = run_expr(body, "num.Time")
        assert result >= 0
        assert result == pytest.approx(
            vm.total_cycles * 1000 // vm.config.clock_hz, abs=1000)
