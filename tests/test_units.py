"""Unit conversions and overhead formulas."""

import math

import pytest

from repro import units


class TestClockConversions:
    def test_cycles_to_seconds_default_clock(self):
        assert units.cycles_to_seconds(units.DEFAULT_CLOCK_HZ) == 1.0

    def test_seconds_to_cycles_roundtrip(self):
        assert units.seconds_to_cycles(2.5) == int(2.5 * 2_660_000_000)

    def test_custom_clock(self):
        assert units.cycles_to_seconds(1000, clock_hz=1000) == 1.0

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1, clock_hz=0)
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1.0, clock_hz=-5)


class TestOverheadFormulas:
    def test_time_overhead_identity(self):
        assert units.overhead_percent(10.0, 10.0) == 0.0

    def test_time_overhead_paper_example(self):
        # compress row of Table I: 5.74 s -> 445.86 s is ~7667.6 %
        overhead = units.overhead_percent(5.74, 445.86)
        assert overhead == pytest.approx(7667.94, abs=1.0)

    def test_throughput_overhead_paper_example(self):
        # JBB row: 7251 -> 66.4 ops/s is ~10820 %
        overhead = units.throughput_overhead_percent(7251, 66.4)
        assert overhead == pytest.approx(10820.18, abs=1.0)

    def test_time_overhead_requires_positive_base(self):
        with pytest.raises(ValueError):
            units.overhead_percent(0.0, 1.0)

    def test_throughput_overhead_requires_positive_measurement(self):
        with pytest.raises(ValueError):
            units.throughput_overhead_percent(100.0, 0.0)


class TestGeometricMean:
    def test_matches_closed_form(self):
        values = [2.0, 8.0]
        assert units.geometric_mean(values) == pytest.approx(4.0)

    def test_single_value(self):
        assert units.geometric_mean([7.0]) == pytest.approx(7.0)

    def test_log_identity(self):
        values = [1.5, 2.25, 9.0, 0.5]
        expected = math.exp(sum(math.log(v) for v in values)
                            / len(values))
        assert units.geometric_mean(values) == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            units.geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.geometric_mean([1.0, 0.0])

    def test_no_overflow_on_large_values(self):
        # a direct running product of these is inf after ~2 terms;
        # the log-domain mean is exactly representable
        values = [1e200] * 400
        assert units.geometric_mean(values) == pytest.approx(
            1e200, rel=1e-12)

    def test_no_underflow_on_tiny_values(self):
        # the direct product underflows to 0.0, whose root is 0.0
        values = [1e-200] * 400
        result = units.geometric_mean(values)
        assert result > 0.0
        assert result == pytest.approx(1e-200, rel=1e-12)

    def test_mixed_magnitudes_stay_finite(self):
        # the running product saturates to inf before the small terms
        # can pull it back; the true mean is exactly 1.0
        values = [1e300] * 5 + [1e-300] * 5
        result = units.geometric_mean(values)
        assert math.isfinite(result)
        assert result == pytest.approx(1.0, rel=1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            units.geometric_mean([2.0, -1.0])
