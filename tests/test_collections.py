"""java.util.Vector and java.util.Hashtable (bytecode collections)."""

from repro.bytecode.assembler import ClassAssembler

from helpers import build_app, expr_main, run_expr, run_main

VEC = "java.util.Vector"
HT = "java.util.Hashtable"


class TestVector:
    def test_add_get_size_with_growth(self):
        def body(m):
            m.new(VEC).dup().iconst(2)
            m.invokespecial(VEC, "<init>", "(I)V").astore(0)
            m.iconst(0).istore(1)
            m.label("fill")
            m.iload(1).iconst(40).if_icmpge("check")
            m.aload(0).ldc("item")
            m.invokevirtual(VEC, "add", "(Ljava.lang.Object;)V")
            m.iinc(1, 1).goto("fill")
            m.label("check")
            m.aload(0).invokevirtual(VEC, "size", "()I")

        result, _ = run_expr(body, "vec.Grow")
        assert result == 40

    def test_get_returns_stored_element(self):
        def body(m):
            m.new(VEC).dup()
            m.invokespecial(VEC, "<init>", "()V").astore(0)
            m.aload(0).ldc("alpha")
            m.invokevirtual(VEC, "add", "(Ljava.lang.Object;)V")
            m.aload(0).ldc("beta")
            m.invokevirtual(VEC, "add", "(Ljava.lang.Object;)V")
            m.aload(0).iconst(1)
            m.invokevirtual(VEC, "get", "(I)Ljava.lang.Object;")
            m.checkcast("java.lang.String")
            m.invokevirtual("java.lang.String", "length", "()I")

        result, _ = run_expr(body, "vec.Get")
        assert result == 4

    def test_index_of_uses_equals(self):
        def body(m):
            m.new(VEC).dup()
            m.invokespecial(VEC, "<init>", "()V").astore(0)
            for word in ("one", "two", "three"):
                m.aload(0).ldc(word)
                m.invokevirtual(VEC, "add", "(Ljava.lang.Object;)V")
            # a fresh (non-interned) equal string must still be found
            m.aload(0)
            m.ldc("tw").ldc("o")
            m.invokevirtual("java.lang.String", "concat",
                            "(Ljava.lang.String;)Ljava.lang.String;")
            m.invokevirtual(VEC, "indexOf", "(Ljava.lang.Object;)I")

        result, _ = run_expr(body, "vec.Idx")
        assert result == 1

    def test_index_of_missing(self):
        def body(m):
            m.new(VEC).dup()
            m.invokespecial(VEC, "<init>", "()V").astore(0)
            m.aload(0).ldc("x")
            m.invokevirtual(VEC, "add", "(Ljava.lang.Object;)V")
            m.aload(0).ldc("y")
            m.invokevirtual(VEC, "indexOf", "(Ljava.lang.Object;)I")

        result, _ = run_expr(body, "vec.Miss")
        assert result == -1

    def test_out_of_bounds_get_throws(self):
        c = ClassAssembler("vec.Oob")
        with c.method("attempt", "()I", static=True) as m:
            m.label("try")
            m.new(VEC).dup()
            m.invokespecial(VEC, "<init>", "()V")
            m.iconst(3)
            m.invokevirtual(VEC, "get", "(I)Ljava.lang.Object;")
            m.label("try_end")
            m.pop().iconst(0).ireturn()
            m.label("h")
            m.instanceof("java.lang.ArrayIndexOutOfBoundsException")
            m.ireturn()
            m.try_catch("try", "try_end", "h", None)
        main = expr_main("vec.OobMain", lambda m: m.invokestatic(
            "vec.Oob", "attempt", "()I"))
        vm = run_main(build_app(c, main), "vec.OobMain")
        assert vm.console[-1] == "1"


class TestHashtable:
    def test_put_get_roundtrip(self):
        def body(m):
            m.new(HT).dup()
            m.invokespecial(HT, "<init>", "()V").astore(0)
            m.aload(0).ldc("key").ldc("value")
            m.invokevirtual(
                HT, "put",
                "(Ljava.lang.Object;Ljava.lang.Object;)V")
            m.aload(0).ldc("key")
            m.invokevirtual(HT, "get",
                            "(Ljava.lang.Object;)Ljava.lang.Object;")
            m.checkcast("java.lang.String")
            m.invokevirtual("java.lang.String", "length", "()I")

        result, _ = run_expr(body, "ht.Rt")
        assert result == 5

    def test_missing_key_returns_null(self):
        def body(m):
            m.new(HT).dup()
            m.invokespecial(HT, "<init>", "()V").astore(0)
            m.aload(0).ldc("ghost")
            m.invokevirtual(HT, "get",
                            "(Ljava.lang.Object;)Ljava.lang.Object;")
            m.ifnull("null")
            m.iconst(0).goto("end")
            m.label("null").iconst(1)
            m.label("end")

        result, _ = run_expr(body, "ht.Null")
        assert result == 1

    def test_overwrite_keeps_size(self):
        def body(m):
            m.new(HT).dup()
            m.invokespecial(HT, "<init>", "()V").astore(0)
            m.aload(0).ldc("k").ldc("v1")
            m.invokevirtual(
                HT, "put",
                "(Ljava.lang.Object;Ljava.lang.Object;)V")
            m.aload(0).ldc("k").ldc("v2")
            m.invokevirtual(
                HT, "put",
                "(Ljava.lang.Object;Ljava.lang.Object;)V")
            m.aload(0).invokevirtual(HT, "size", "()I")

        result, _ = run_expr(body, "ht.Ow")
        assert result == 1

    def test_rehash_preserves_entries(self):
        # insert well past the initial capacity's load limit; the
        # key->value mapping must survive the rehash
        def body(m):
            m.new(HT).dup().iconst(4)
            m.invokespecial(HT, "<init>", "(I)V").astore(0)
            m.iconst(0).istore(1)
            m.label("fill")
            m.iload(1).iconst(60).if_icmpge("check")
            m.aload(0)
            m.iload(1).invokestatic("java.lang.Integer", "toString",
                                    "(I)Ljava.lang.String;")
            m.iload(1).invokestatic("java.lang.Integer", "toString",
                                    "(I)Ljava.lang.String;")
            m.invokevirtual(
                HT, "put",
                "(Ljava.lang.Object;Ljava.lang.Object;)V")
            m.iinc(1, 1).goto("fill")
            m.label("check")
            m.aload(0).ldc("37")
            m.invokevirtual(HT, "get",
                            "(Ljava.lang.Object;)Ljava.lang.Object;")
            m.checkcast("java.lang.String")
            m.ldc("37")
            m.invokevirtual("java.lang.String", "equals",
                            "(Ljava.lang.Object;)I")
            m.aload(0).invokevirtual(HT, "size", "()I")
            m.iconst(1000).imul().iadd()

        result, _ = run_expr(body, "ht.Rh")
        assert result == 60 * 1000 + 1

    def test_contains_key(self):
        def body(m):
            m.new(HT).dup()
            m.invokespecial(HT, "<init>", "()V").astore(0)
            m.aload(0).ldc("a").ldc("b")
            m.invokevirtual(
                HT, "put",
                "(Ljava.lang.Object;Ljava.lang.Object;)V")
            m.aload(0).ldc("a")
            m.invokevirtual(HT, "containsKey",
                            "(Ljava.lang.Object;)I")
            m.aload(0).ldc("z")
            m.invokevirtual(HT, "containsKey",
                            "(Ljava.lang.Object;)I")
            m.iconst(10).imul().iadd()

        result, _ = run_expr(body, "ht.Ck")
        assert result == 1

    def test_non_string_keys_use_identity_hash(self):
        def body(m):
            m.new(HT).dup()
            m.invokespecial(HT, "<init>", "()V").astore(0)
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(1)
            m.aload(0).aload(1).ldc("obj-value")
            m.invokevirtual(
                HT, "put",
                "(Ljava.lang.Object;Ljava.lang.Object;)V")
            m.aload(0).aload(1)
            m.invokevirtual(HT, "get",
                            "(Ljava.lang.Object;)Ljava.lang.Object;")
            m.ifnonnull("hit")
            m.iconst(0).goto("end")
            m.label("hit").iconst(1)
            m.label("end")

        result, _ = run_expr(body, "ht.Obj")
        assert result == 1
