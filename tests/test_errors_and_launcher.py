"""Error hierarchy and the VM factory."""

import pytest

from repro import errors
from repro.launcher import create_vm, runtime_archive


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_linkage_family(self):
        assert issubclass(errors.ClassNotFoundError,
                          errors.LinkageError)
        assert issubclass(errors.NoSuchMethodError,
                          errors.LinkageError)
        assert issubclass(errors.UnsatisfiedLinkError,
                          errors.LinkageError)

    def test_vm_family(self):
        assert issubclass(errors.StackOverflowSimError, errors.VMError)
        assert issubclass(errors.DeadlockError, errors.VMError)
        assert issubclass(errors.JavaException, errors.VMError)

    def test_java_exception_carries_payload(self):
        exc = errors.JavaException("java.lang.Foo", "boom",
                                   jobject="sentinel")
        assert exc.class_name == "java.lang.Foo"
        assert exc.message == "boom"
        assert exc.jobject == "sentinel"
        assert "boom" in str(exc)

    def test_catching_base_catches_subsystems(self):
        with pytest.raises(errors.ReproError):
            raise errors.JVMTIError("x")
        with pytest.raises(errors.ReproError):
            raise errors.InstrumentationError("x")


class TestLauncher:
    def test_runtime_archive_is_cached(self):
        assert runtime_archive() is runtime_archive()

    def test_create_vm_preloads_core_natives(self):
        vm = create_vm()
        assert vm.native_registry.is_loaded("java")

    def test_bare_vm_has_no_runtime(self):
        vm = create_vm(with_runtime=False)
        assert not vm.loader.bootclasspath
        assert not vm.native_registry.is_loaded("java")

    def test_vms_do_not_share_state(self):
        a = create_vm()
        b = create_vm()
        a.threads.current = a.threads.create("t")
        a.intern_string("only-in-a")
        assert b.heap.intern_table_size == 0
