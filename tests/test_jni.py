"""JNI layer: mangling, libraries, resolution with prefixes, the
function table and its 90 Call entries."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.errors import JNIError, UnsatisfiedLinkError
from repro.jni.function_table import CALL_FUNCTION_NAMES
from repro.jni.library import NativeLibrary, NativeRegistry
from repro.jni.mangling import mangle
from repro.launcher import create_vm

from helpers import build_app, expr_main, run_main


class TestMangling:
    def test_dots_become_underscores(self):
        assert mangle("java.lang.System", "arraycopy") == \
            "Java_java_lang_System_arraycopy"

    def test_plain_class(self):
        assert mangle("Main", "f") == "Java_Main_f"


class TestNativeLibrary:
    def test_export_and_lookup(self):
        lib = NativeLibrary("demo")

        @lib.native_method("a.B", "f")
        def f(env):
            return 1

        assert lib.lookup("Java_a_B_f") is f
        assert lib.lookup("Java_a_B_g") is None

    def test_duplicate_symbol_rejected(self):
        lib = NativeLibrary("demo")
        lib.export("s", lambda env: None)
        with pytest.raises(JNIError):
            lib.export("s", lambda env: None)

    def test_empty_name_rejected(self):
        with pytest.raises(JNIError):
            NativeLibrary("")


class TestRegistry:
    def _vm(self):
        return create_vm()

    def test_load_library_required_before_resolution(self):
        vm = self._vm()
        lib = NativeLibrary("opt")
        lib.export("Java_x_Y_f", lambda env: 1)
        vm.native_registry.register(lib)  # available, not loaded
        assert not vm.native_registry.is_loaded("opt")
        vm.native_registry.load_library("opt")
        assert vm.native_registry.is_loaded("opt")

    def test_unknown_library(self):
        vm = self._vm()
        with pytest.raises(UnsatisfiedLinkError):
            vm.native_registry.load_library("ghost")

    def test_duplicate_registration_rejected(self):
        vm = self._vm()
        lib = NativeLibrary("dup")
        vm.native_registry.register(lib)
        with pytest.raises(JNIError):
            vm.native_registry.register(NativeLibrary("dup"))

    def test_unresolvable_native_throws_java_error(self):
        c = ClassAssembler("ul.C")
        c.native_method("ghost", "()I", static=True)

        def body(m):
            m.invokestatic("ul.C", "ghost", "()I")

        vm = run_main(build_app(c, expr_main("ul.Main", body)),
                      "ul.Main")
        thread = vm.threads.all_threads[0]
        assert thread.uncaught_exception.class_name == \
            "java.lang.UnsatisfiedLinkError"

    def test_prefix_retry_resolution(self):
        # a method renamed with a prefix resolves to the unprefixed
        # library symbol once the prefix is registered (JVMTI 1.1)
        c = ClassAssembler("pr.C")
        c.native_method("_p_answer", "()I", static=True)
        lib = NativeLibrary("prlib")

        @lib.native_method("pr.C", "answer")
        def answer(env):
            env.charge(10)
            return 41

        def body(m):
            m.invokestatic("pr.C", "_p_answer", "()I")
            m.iconst(1).iadd()

        vm = create_vm()
        vm.native_registry.register(lib, preload=True)
        vm.jvmti.native_method_prefixes.append("_p_")
        vm.loader.add_classpath_archive(
            build_app(c, expr_main("pr.Main", body)))
        vm.launch("pr.Main")
        assert vm.console[-1] == "42"


class TestFunctionTable:
    def test_all_90_call_functions_present(self):
        assert len(CALL_FUNCTION_NAMES) == 90
        vm = create_vm()
        for name in CALL_FUNCTION_NAMES:
            assert vm.jni_table.get(name) is not None

    def test_matrix_structure(self):
        kinds = {"", "Static", "Nonvirtual"}
        variants = {"", "A", "V"}
        for kind in kinds:
            for variant in variants:
                name = f"Call{kind}IntMethod{variant}"
                assert name in CALL_FUNCTION_NAMES

    def test_replace_returns_previous(self):
        vm = create_vm()
        original = vm.jni_table.get("CallIntMethod")
        sentinel = lambda env, *a: 0  # noqa: E731
        previous = vm.jni_table.replace("CallIntMethod", sentinel)
        assert previous is original
        assert vm.jni_table.get("CallIntMethod") is sentinel

    def test_unknown_function_rejected(self):
        vm = create_vm()
        with pytest.raises(JNIError):
            vm.jni_table.get("CallBogusMethod")
        with pytest.raises(JNIError):
            vm.jni_table.install({"CallBogusMethod": lambda: None})


class TestNativeToJavaCalls:
    def _callback_app(self):
        """A native method that calls back into Java via JNI."""
        c = ClassAssembler("cb.C")
        c.native_method("viaJni", "(I)I", static=True)
        with c.method("twice", "(I)I", static=True) as m:
            m.iload(0).iconst(2).imul().ireturn()

        lib = NativeLibrary("cb")

        @lib.native_method("cb.C", "viaJni")
        def via_jni(env, value):
            env.charge(20)
            mid = env.get_static_method_id("cb.C", "twice", "(I)I")
            return env.call_static_int_method(mid, value)

        def body(m):
            m.iconst(21).invokestatic("cb.C", "viaJni", "(I)I")

        return build_app(c, expr_main("cb.Main", body)), lib

    def test_round_trip_through_jni(self):
        app, lib = self._callback_app()
        vm = create_vm()
        vm.native_registry.register(lib, preload=True)
        vm.loader.add_classpath_archive(app)
        vm.launch("cb.Main")
        assert vm.console[-1] == "42"
        # main entry + the callback
        assert vm.jni_invocations >= 2

    def test_virtual_dispatch_through_jni(self):
        base = ClassAssembler("cv.Base")
        with base.method("<init>", "()V") as m:
            m.return_()
        with base.method("pick", "()I") as m:
            m.iconst(1).ireturn()
        sub = ClassAssembler("cv.Sub", super_name="cv.Base")
        with sub.method("pick", "()I") as m:
            m.iconst(2).ireturn()
        holder = ClassAssembler("cv.H")
        holder.native_method("callPick", "(Lcv.Base;)I", static=True)

        lib = NativeLibrary("cv")

        @lib.native_method("cv.H", "callPick")
        def call_pick(env, obj):
            mid = env.get_method_id("cv.Base", "pick", "()I")
            return env.call_int_method(obj, mid)

        def body(m):
            m.new("cv.Sub").dup()
            m.invokespecial("cv.Sub", "<init>", "()V")
            m.invokestatic("cv.H", "callPick", "(Lcv.Base;)I")

        vm = create_vm()
        vm.native_registry.register(lib, preload=True)
        vm.loader.add_classpath_archive(
            build_app(base, sub, holder, expr_main("cv.Main", body)))
        vm.launch("cv.Main")
        # Call<type>Method dispatches virtually, like JNI
        assert vm.console[-1] == "2"

    def test_nonvirtual_dispatch(self):
        base = ClassAssembler("nv.Base")
        with base.method("<init>", "()V") as m:
            m.return_()
        with base.method("pick", "()I") as m:
            m.iconst(1).ireturn()
        sub = ClassAssembler("nv.Sub", super_name="nv.Base")
        with sub.method("pick", "()I") as m:
            m.iconst(2).ireturn()
        holder = ClassAssembler("nv.H")
        holder.native_method("callPick", "(Lnv.Base;)I", static=True)

        lib = NativeLibrary("nv")

        @lib.native_method("nv.H", "callPick")
        def call_pick(env, obj):
            mid = env.get_method_id("nv.Base", "pick", "()I")
            return env.call_jni("CallNonvirtualIntMethod", obj, mid)

        def body(m):
            m.new("nv.Sub").dup()
            m.invokespecial("nv.Sub", "<init>", "()V")
            m.invokestatic("nv.H", "callPick", "(Lnv.Base;)I")

        vm = create_vm()
        vm.native_registry.register(lib, preload=True)
        vm.loader.add_classpath_archive(
            build_app(base, sub, holder, expr_main("nv.Main", body)))
        vm.launch("nv.Main")
        # CallNonvirtual* uses the method id exactly
        assert vm.console[-1] == "1"


class TestJNIEnvHelpers:
    def _env(self):
        vm = create_vm()
        thread = vm.threads.create("t")
        vm.threads.current = thread
        return vm.jni_env(thread)

    def test_string_helpers(self):
        env = self._env()
        js = env.new_string("abc")
        assert env.get_string(js) == "abc"

    def test_array_regions(self):
        from repro.bytecode.opcodes import ArrayKind

        env = self._env()
        arr = env.new_array(ArrayKind.INT, 5)
        env.set_array_region(arr, 1, [10, 20])
        assert env.array_region(arr, 0, 4) == [0, 10, 20, 0]

    def test_array_region_bounds_throw_java(self):
        from repro.bytecode.opcodes import ArrayKind
        from repro.jvm.interpreter import Unwind

        env = self._env()
        arr = env.new_array(ArrayKind.INT, 2)
        with pytest.raises(Unwind):
            env.array_region(arr, 0, 5)

    def test_get_method_id_validates_staticness(self):
        env = self._env()
        with pytest.raises(JNIError):
            env.get_method_id("java.lang.Math", "abs", "(I)I")
        with pytest.raises(JNIError):
            env.get_static_method_id("java.lang.String", "length",
                                     "()I")

    def test_helpers_charge_native_cycles(self):
        env = self._env()
        before = env.thread.cycles_total
        env.new_string("x")
        assert env.thread.cycles_total > before
