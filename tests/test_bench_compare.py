"""Bench regression gate: compare_bench, rate fallback, CLI wiring."""

import json

import pytest

from repro.cli import main
from repro.harness import bench as bench_module
from repro.harness.bench import compare_bench, read_bench, write_bench


def _doc(rate, per_workload=None, tier="template"):
    return {
        "benchmark": "jvm98/none-agent",
        "scale": 1,
        "tier": tier,
        "python": "3.11.0",
        "host_seconds": 1.0,
        "instructions": rate,
        "instructions_per_second": rate,
        "per_workload": per_workload or {},
    }


class TestCompareBench:
    def test_within_budget_passes(self):
        ok, lines = compare_bench(_doc(980), _doc(1000), 5.0)
        assert ok
        assert any("OK" in line for line in lines)
        assert any("-2.0%" in line for line in lines)

    def test_improvement_passes(self):
        ok, lines = compare_bench(_doc(2000), _doc(1000), 5.0)
        assert ok
        assert any("+100.0%" in line for line in lines)

    def test_regression_fails(self):
        ok, lines = compare_bench(_doc(900), _doc(1000), 5.0)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_budget_is_configurable(self):
        ok, _ = compare_bench(_doc(900), _doc(1000), 15.0)
        assert ok

    def test_zero_baseline_never_gates(self):
        ok, lines = compare_bench(_doc(900), _doc(0), 5.0)
        assert ok
        assert any("nothing to gate" in line for line in lines)

    def test_per_workload_deltas_reported(self):
        base = _doc(1000, {"db": {"host_seconds": 0.5,
                                  "instructions": 500,
                                  "instructions_per_second": 1000}})
        cur = _doc(1500, {"db": {"host_seconds": 0.4,
                                 "instructions": 600,
                                 "instructions_per_second": 1500}})
        _, lines = compare_bench(cur, base, 5.0)
        assert any("db" in line and "+50.0%" in line for line in lines)

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench(_doc(1234), str(path))
        assert read_bench(str(path)) == _doc(1234)


class TestProvenance:
    def test_run_bench_stamps_provenance(self):
        """The measurement document carries host, time, and git state."""
        from repro.workloads import get_workload
        doc = bench_module.run_bench(
            scale=1, workloads=[get_workload("db")])
        assert doc["hostname"]
        assert doc["timestamp_utc"].endswith("Z")
        assert "git_sha" in doc and "git_dirty" in doc

    def test_cross_host_comparison_warns(self):
        base = dict(_doc(1000), hostname="hostA")
        cur = dict(_doc(1000), hostname="hostB")
        ok, lines = compare_bench(cur, base, 5.0)
        assert ok  # a warning, never a gate
        assert any("different hosts" in line for line in lines)

    def test_same_host_no_warning(self):
        base = dict(_doc(1000), hostname="hostA")
        cur = dict(_doc(1000), hostname="hostA")
        _, lines = compare_bench(cur, base, 5.0)
        assert not any("WARNING" in line for line in lines)

    def test_dirty_tree_warns_for_either_side(self):
        base = dict(_doc(1000), git_dirty=True, git_sha="a" * 40)
        cur = _doc(1000)
        ok, lines = compare_bench(cur, base, 5.0)
        assert ok
        assert any("baseline" in line and "dirty" in line
                   for line in lines)
        ok, lines = compare_bench(dict(_doc(1000), git_dirty=True),
                                  _doc(1000), 5.0)
        assert any("current" in line and "dirty" in line
                   for line in lines)

    def test_tier_mismatch_warns(self):
        ok, lines = compare_bench(_doc(1000, tier="interp"),
                                  _doc(1000, tier="template"), 5.0)
        assert ok  # a warning, never a gate
        assert any("tier mismatch" in line for line in lines)

    def test_cores_mismatch_warns(self):
        base = dict(_doc(1000), cores=1)
        cur = dict(_doc(1000), cores=4)
        ok, lines = compare_bench(cur, base, 5.0)
        assert ok
        assert any("core-count mismatch" in line for line in lines)

    def test_matching_tier_and_cores_stay_silent(self):
        base = dict(_doc(1000), cores=2)
        cur = dict(_doc(1000), cores=2)
        _, lines = compare_bench(cur, base, 5.0)
        assert not any("mismatch" in line for line in lines)

    def test_docs_without_provenance_compare_cleanly(self):
        # pre-provenance baselines (no hostname/git keys) still work
        ok, lines = compare_bench(_doc(1000), _doc(1000), 5.0)
        assert ok
        assert not any("WARNING" in line for line in lines)


class TestSuiteRateFallback:
    def test_sub_resolution_workload_gets_suite_rate(self, monkeypatch):
        """A workload finishing under timer resolution must report the
        suite-level rate (flagged), never null."""
        from repro.workloads import get_workload

        class FakeTime:
            # start/stop pairs: first workload takes 0.5s, second 0.0s
            _values = iter([0.0, 0.5, 0.5, 0.5])

            @classmethod
            def perf_counter(cls):
                return next(cls._values)

        monkeypatch.setattr(bench_module, "time", FakeTime)
        doc = bench_module.run_bench(
            workloads=[get_workload("db"), get_workload("jess")])
        rows = doc["per_workload"]
        assert rows["db"].get("rate_source") is None
        assert rows["jess"]["rate_source"] == "suite"
        assert rows["jess"]["instructions_per_second"] == \
            doc["instructions_per_second"]
        assert all(row["instructions_per_second"] is not None
                   for row in rows.values())

    def test_fallback_rows_render_flagged(self):
        doc = _doc(1000, {"tiny": {"host_seconds": 0.0,
                                   "instructions": 10,
                                   "instructions_per_second": 1000,
                                   "rate_source": "suite"}})
        text = bench_module.format_bench(doc)
        assert "1,000*" in text
        assert "host-timer resolution" in text


class TestCliCompare:
    @pytest.fixture
    def fast_bench(self, monkeypatch):
        monkeypatch.setattr(bench_module, "run_bench",
                            lambda scale=1, workloads=None,
                            tier="template", cores=1, osr=True,
                            suite="jvm98": _doc(1000, tier=tier))

    def test_compare_ok_exits_zero(self, tmp_path, capsys, fast_bench):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(_doc(990)))
        assert main(["bench", "--output", "",
                     "--compare", str(baseline)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_regression_exits_one(self, tmp_path, capsys,
                                          fast_bench):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(_doc(2000)))
        assert main(["bench", "--output", "",
                     "--compare", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_max_regression_flag(self, tmp_path, fast_bench):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(_doc(1100)))
        assert main(["bench", "--output", "", "--compare",
                     str(baseline), "--max-regression", "3"]) == 1
        assert main(["bench", "--output", "", "--compare",
                     str(baseline), "--max-regression", "20"]) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys,
                                             fast_bench):
        assert main(["bench", "--output", "", "--compare",
                     str(tmp_path / "absent.json")]) == 2
        assert "cannot read bench baseline" in capsys.readouterr().err

    def test_tier_flag_reaches_run_bench(self, tmp_path, capsys,
                                         fast_bench):
        out = tmp_path / "bench.json"
        assert main(["bench", "--tier", "interp",
                     "--output", str(out)]) == 0
        assert json.loads(out.read_text())["tier"] == "interp"
