"""Class-file layer: constant pool, members, model, serializer,
archives."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind, Op
from repro.classfile.archive import ClassArchive
from repro.classfile.classfile import ClassFile
from repro.classfile.constant_pool import (
    ConstantPool,
    CpClass,
    CpFieldRef,
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.classfile.members import (
    ACC_NATIVE,
    ACC_STATIC,
    FieldInfo,
    MethodInfo,
    arg_slot_count,
    parse_descriptor,
)
from repro.classfile.serializer import dump_class, load_class
from repro.errors import ClassFileError, ConstantPoolError


class TestConstantPool:
    def test_indices_are_one_based_and_stable(self):
        pool = ConstantPool()
        first = pool.add(CpInt(10))
        second = pool.add(CpString("x"))
        assert (first, second) == (1, 2)
        assert pool.get(1) == CpInt(10)

    def test_deduplication(self):
        pool = ConstantPool()
        a = pool.add(CpMethodRef("C", "m", "()V"))
        b = pool.add(CpMethodRef("C", "m", "()V"))
        assert a == b
        assert len(pool) == 1

    def test_distinct_types_not_conflated(self):
        pool = ConstantPool()
        a = pool.add(CpInt(1))
        b = pool.add(CpFloat(1.0))
        assert a != b

    def test_index_zero_invalid(self):
        pool = ConstantPool()
        pool.add(CpInt(1))
        with pytest.raises(ConstantPoolError):
            pool.get(0)

    def test_out_of_range(self):
        pool = ConstantPool()
        with pytest.raises(ConstantPoolError):
            pool.get(1)

    def test_typed_access(self):
        pool = ConstantPool()
        index = pool.add(CpClass("C"))
        assert pool.get_typed(index, CpClass).name == "C"
        with pytest.raises(ConstantPoolError):
            pool.get_typed(index, CpFieldRef)

    def test_rejects_non_entries(self):
        pool = ConstantPool()
        with pytest.raises(ConstantPoolError):
            pool.add("not an entry")

    def test_copy_is_independent(self):
        pool = ConstantPool()
        pool.add(CpInt(1))
        clone = pool.copy()
        clone.add(CpInt(2))
        assert len(pool) == 1
        assert len(clone) == 2


class TestDescriptors:
    def test_simple(self):
        assert parse_descriptor("(II)I") == (["I", "I"], "I")

    def test_refs_and_arrays(self):
        params, ret = parse_descriptor(
            "(Ljava.lang.String;[B[[I)V")
        assert params == ["Ljava.lang.String;", "[B", "[[I"]
        assert ret == "V"

    def test_all_primitive_letters(self):
        params, _ = parse_descriptor("(IFBCZSJD)V")
        assert len(params) == 8

    def test_arg_slot_count(self):
        assert arg_slot_count("()V") == 0
        assert arg_slot_count("(I[CLjava.lang.Object;)I") == 3

    @pytest.mark.parametrize("bad", [
        "II)I", "(II", "(II)", "(Q)V", "(L)V", "(Lfoo)V", "([)V",
        "()Ix",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ClassFileError):
            parse_descriptor(bad)


class TestMembers:
    def test_native_method_must_not_have_code(self):
        with pytest.raises(ClassFileError):
            MethodInfo("n", "()V", ACC_NATIVE, code=[])

    def test_bytecode_method_must_have_code(self):
        with pytest.raises(ClassFileError):
            MethodInfo("f", "()V", ACC_STATIC, code=None)

    def test_arg_slots_include_receiver(self):
        from repro.bytecode.instructions import Instruction

        instance = MethodInfo("m", "(I)V", 0,
                              code=[Instruction(Op.RETURN)])
        static = MethodInfo("s", "(I)V", ACC_STATIC,
                            code=[Instruction(Op.RETURN)])
        assert instance.arg_slots == 2
        assert static.arg_slots == 1

    def test_field_staticness(self):
        assert FieldInfo("x", ACC_STATIC).is_static
        assert not FieldInfo("y").is_static


class TestClassFileModel:
    def test_object_root_has_no_super(self):
        cf = ClassFile("java.lang.Object")
        assert cf.super_name is None

    def test_other_classes_need_super(self):
        with pytest.raises(ClassFileError):
            ClassFile("a.B", super_name=None)

    def test_duplicate_member_rejected(self):
        cf = ClassFile("a.C")
        cf.add_field(FieldInfo("x"))
        with pytest.raises(ClassFileError):
            cf.add_field(FieldInfo("x"))

    def test_method_overloads_allowed(self):
        c = ClassAssembler("a.D")
        with c.method("f", "(I)V", static=True) as m:
            m.return_()
        with c.method("f", "(II)V", static=True) as m:
            m.return_()
        cf = c.build()
        assert cf.find_method("f", "(I)V") is not None
        assert cf.find_method("f", "(II)V") is not None

    def test_native_method_listing(self):
        c = ClassAssembler("a.E")
        c.native_method("n1", "()V", static=True)
        with c.method("f", "()V", static=True) as m:
            m.return_()
        cf = c.build()
        assert [m.name for m in cf.native_methods()] == ["n1"]
        assert cf.has_native_methods()

    def test_remove_method(self):
        c = ClassAssembler("a.F")
        info = c.native_method("n", "()V", static=True)
        cf = c.build()
        cf.remove_method(info)
        assert cf.find_method("n", "()V") is None


def _rich_class() -> ClassFile:
    c = ClassAssembler("ser.Rich", super_name="java.lang.Object")
    c.field("count", static=True, default=41)
    c.field("label", default=None)
    c.field("ratio", default=0.5)
    c.field("title", default="hello")
    c.native_method("nat", "(I[B)I", static=True)
    with c.method("f", "(I)I", static=True) as m:
        m.label("top")
        m.iload(0).iconst(1).isub().istore(0)
        m.iload(0).ifgt("top")
        m.ldc("text").invokevirtual("java.lang.String", "length",
                                    "()I")
        m.pop()
        m.ldc(2.5).pop()
        m.iconst(4).newarray(ArrayKind.BYTE).pop()
        m.iinc(0, 7)
        m.getstatic("ser.Rich", "count")
        m.ireturn()
        m.label("h")
        m.pop().iconst(0).ireturn()
        m.try_catch("top", "h", "h", "java.lang.Exception")
    return c.build(verify=False)


class TestSerializer:
    def test_roundtrip_preserves_everything(self):
        cf = _rich_class()
        clone = load_class(dump_class(cf))
        assert clone.name == cf.name
        assert clone.super_name == cf.super_name
        assert [f.name for f in clone.fields] == \
            [f.name for f in cf.fields]
        assert clone.find_field("count").default == 41
        assert clone.find_field("ratio").default == 0.5
        assert clone.find_field("title").default == "hello"
        original = cf.find_method("f", "(I)I")
        loaded = clone.find_method("f", "(I)I")
        assert [i.op for i in loaded.code] == \
            [i.op for i in original.code]
        assert [i.operand for i in loaded.code] == \
            [i.operand for i in original.code]
        assert loaded.exception_table == original.exception_table
        assert clone.find_method("nat", "(I[B)I").is_native

    def test_constant_pool_roundtrip(self):
        cf = _rich_class()
        clone = load_class(dump_class(cf))
        originals = dict(cf.constant_pool.entries())
        cloned = dict(clone.constant_pool.entries())
        assert originals == cloned

    def test_bad_magic_rejected(self):
        with pytest.raises(ClassFileError, match="magic"):
            load_class(b"XXXX" + b"\x00" * 16)

    def test_truncation_rejected(self):
        data = dump_class(_rich_class())
        with pytest.raises(ClassFileError):
            load_class(data[:len(data) // 2])

    def test_trailing_bytes_rejected(self):
        data = dump_class(_rich_class())
        with pytest.raises(ClassFileError, match="trailing"):
            load_class(data + b"\x00")

    def test_unresolved_labels_cannot_serialize(self):
        from repro.bytecode.instructions import Instruction

        cf = ClassFile("ser.Bad")
        cf.add_method(MethodInfo(
            "f", "()V", ACC_STATIC,
            code=[Instruction(Op.GOTO, "loop")]))
        with pytest.raises(ClassFileError, match="unresolved"):
            dump_class(cf)


class TestArchive:
    def test_roundtrip(self):
        archive = ClassArchive()
        archive.put_class(_rich_class())
        c2 = ClassAssembler("ser.Other")
        with c2.method("g", "()V", static=True) as m:
            m.return_()
        archive.put_class(c2.build())
        clone = ClassArchive.from_bytes(archive.to_bytes())
        assert clone.names() == ["ser.Rich", "ser.Other"]
        assert clone.get_class("ser.Other").find_method(
            "g", "()V") is not None

    def test_missing_entry(self):
        archive = ClassArchive()
        with pytest.raises(ClassFileError):
            archive.get_bytes("nope")

    def test_name_mismatch_detected(self):
        archive = ClassArchive()
        archive.put_bytes("wrong.Name", dump_class(_rich_class()))
        with pytest.raises(ClassFileError, match="contains class"):
            archive.get_class("wrong.Name")

    def test_save_and_load(self, tmp_path):
        archive = ClassArchive()
        archive.put_class(_rich_class())
        path = tmp_path / "classes.rja"
        archive.save(path)
        assert ClassArchive.load(path).names() == ["ser.Rich"]

    def test_bad_magic(self):
        with pytest.raises(ClassFileError, match="magic"):
            ClassArchive.from_bytes(b"NOPE\x00\x01\x00\x00\x00\x00")

    def test_iteration(self):
        archive = ClassArchive()
        archive.put_class(_rich_class())
        assert [cf.name for cf in archive.classes()] == ["ser.Rich"]
        assert "ser.Rich" in archive
        assert len(archive) == 1
