"""Make tests/ importable as a source of shared helpers."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
