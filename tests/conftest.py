"""Make tests/ importable as a source of shared helpers."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(autouse=True)
def _ledger_in_tmpdir(tmp_path, monkeypatch):
    """Point the default run ledger at a per-test tmpdir.

    CLI invocations under test would otherwise append manifests to
    the repository's own ``.repro-runs/``; tests that care about the
    ledger pass an explicit ``--ledger-dir``.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
