"""Cycle-charging discipline of the JDK native library.

Three invariants, checked against live runs rather than by reading
the code: every declared native resolves to an implementation; every
``env.charge`` is a nonnegative amount landing under the NATIVE
ground-truth tag; and blocking natives never touch the CPU clock for
the cycles they spend parked on a device."""

from __future__ import annotations

import pytest

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.jni.function_table import JNIEnv
from repro.jni.mangling import mangle
from repro.jni.stdlib import build_java_library
from repro.jvm.costmodel import ChargeTag
from repro.jvm.threads import SimThread
from repro.launcher import runtime_archive
from repro.workloads import get_workload

#: Workloads that together touch strings, arrays, streams, CRC32,
#: math, println, and both blocking device families.
EXERCISERS = ("jess", "io-logs", "io-echo")


class TestDeclaredNativesResolve:
    def test_every_declared_native_has_an_implementation(self):
        lib = build_java_library()
        missing = [
            f"{cf.name}.{method.name}"
            for cf in runtime_archive().classes()
            for method in cf.native_methods()
            if lib.lookup(mangle(cf.name, method.name)) is None]
        assert not missing, missing


@pytest.fixture
def charge_log(monkeypatch):
    """Every env.charge / env.charge_blocked across a run, with the
    ground-truth tags the CPU charges landed under."""
    log = {"cpu": [], "blocked": [], "tags": [], "leaks": []}
    in_env_charge = []

    original_charge = JNIEnv.charge
    original_blocked = JNIEnv.charge_blocked
    original_thread_charge = SimThread.charge

    def spy_charge(env, cycles):
        log["cpu"].append((env.native_name, cycles))
        in_env_charge.append(True)
        try:
            original_charge(env, cycles)
        finally:
            in_env_charge.pop()

    def spy_blocked(env, device, cycles):
        before = env.thread.cycles_total
        blocked = original_blocked(env, device, cycles)
        if env.thread.cycles_total != before:
            log["leaks"].append((env.native_name, device))
        log["blocked"].append((env.native_name, device, cycles,
                               blocked))
        return blocked

    def spy_thread_charge(thread, cycles, tag):
        if in_env_charge:
            log["tags"].append((cycles, tag))
        original_thread_charge(thread, cycles, tag)

    monkeypatch.setattr(JNIEnv, "charge", spy_charge)
    monkeypatch.setattr(JNIEnv, "charge_blocked", spy_blocked)
    monkeypatch.setattr(SimThread, "charge", spy_thread_charge)
    return log


class TestChargingDiscipline:
    @pytest.mark.parametrize("name", EXERCISERS)
    def test_cpu_charges_are_nonnegative_ints(self, name, charge_log):
        execute(get_workload(name), RunConfig(agent=AgentSpec.none()))
        assert charge_log["cpu"], "no native ever charged"
        for native, cycles in charge_log["cpu"]:
            assert isinstance(cycles, int), (native, cycles)
            assert cycles >= 0, (native, cycles)

    @pytest.mark.parametrize("name", EXERCISERS)
    def test_cpu_charges_carry_the_native_tag(self, name, charge_log):
        execute(get_workload(name), RunConfig(agent=AgentSpec.none()))
        assert charge_log["tags"]
        for cycles, tag in charge_log["tags"]:
            assert tag is ChargeTag.NATIVE, (cycles, tag)

    @pytest.mark.parametrize("name", ["io-logs", "io-echo"])
    def test_blocking_natives_never_charge_cpu_while_parked(
            self, name, charge_log):
        result = execute(get_workload(name),
                         RunConfig(agent=AgentSpec.none()))
        assert charge_log["blocked"], "no native ever blocked"
        assert not charge_log["leaks"], charge_log["leaks"]
        for native, device, cycles, blocked in charge_log["blocked"]:
            assert native is not None
            assert device in ("disk", "net")
            assert cycles >= 0
            # queueing can only lengthen a wait, never shorten it
            assert blocked >= cycles
        assert sum(row[3] for row in charge_log["blocked"]) == \
            result.blocked_cycles

    def test_non_blocking_natives_stay_off_the_devices(self,
                                                       charge_log):
        result = execute(get_workload("jess"),
                         RunConfig(agent=AgentSpec.none()))
        assert charge_log["blocked"] == []
        assert result.blocked_cycles == 0
