"""Golden-file regression for the paper's tables, plus observability
parity.

Two guarantees pinned here:

* ``repro table1`` / ``repro table2`` reproduce ``results/table*.txt``
  byte-for-byte (the simulator is deterministic; any drift is a
  regression or an intentional change that must refresh the goldens);
* the rendered tables are identical with observability enabled or
  disabled, serially and under ``--jobs 4`` — the zero-perturbation
  rule, end to end.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.harness.overhead import build_table1
from repro.harness.report import render_table1
from repro.observability import ObservabilityConfig
from repro.workloads import get_workload

RESULTS = Path(__file__).resolve().parent.parent / "results"


class TestGoldenFiles:
    def test_table1_matches_golden(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert out == (RESULTS / "table1.txt").read_text()

    def test_table2_matches_golden(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert out == (RESULTS / "table2.txt").read_text()


class TestObservabilityParity:
    """Tables must not change by one byte when observability is on."""

    @pytest.fixture(scope="class")
    def workloads(self):
        return [get_workload("db"), get_workload("jess")]

    @pytest.fixture(scope="class")
    def plain(self, workloads):
        return render_table1(build_table1(workloads))

    def test_serial_trace_and_metrics(self, workloads, plain):
        observed = build_table1(
            workloads,
            observability=ObservabilityConfig(trace=True, metrics=True))
        assert render_table1(observed) == plain
        assert observed.captures and all(observed.captures)

    def test_jobs4_parity_and_fixed_merge_order(self, workloads,
                                                plain):
        observed = build_table1(
            workloads, jobs=4,
            observability=ObservabilityConfig(trace=True, metrics=True))
        assert render_table1(observed) == plain
        # captures come back in cell order (workload outer, agent
        # inner) no matter which worker finished first
        labels = [(c["labels"]["workload"], c["labels"]["agent"])
                  for c in observed.captures]
        assert labels == [("db", "original"), ("db", "spa"),
                          ("db", "ipa"), ("jess", "original"),
                          ("jess", "spa"), ("jess", "ipa")]

    def test_jobs_do_not_change_cycles(self, workloads, plain):
        parallel = render_table1(build_table1(workloads, jobs=4))
        assert parallel == plain
