"""Harness: runner, Table I/II builders, report rendering."""

import pytest

from repro import units
from repro.errors import HarnessError
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import build_table1
from repro.harness.report import render_table1, render_table2
from repro.harness.runner import execute
from repro.harness.statistics import build_table2
from repro.workloads.base import MetricKind

from test_agents import MixedWorkload


class ThroughputMixedWorkload(MixedWorkload):
    """MixedWorkload reported as a throughput benchmark."""

    name = "mixed-tp"
    metric = MetricKind.THROUGHPUT

    def operations(self, vm) -> int:
        return self.iterations


@pytest.fixture(scope="module")
def table1():
    return build_table1([MixedWorkload(),
                         ThroughputMixedWorkload()])


@pytest.fixture(scope="module")
def table2():
    return build_table2([MixedWorkload()])


class TestRunner:
    def test_invalid_runs_rejected(self):
        with pytest.raises(HarnessError):
            execute(MixedWorkload(), RunConfig(runs=0))

    def test_median_of_deterministic_runs(self):
        single = execute(MixedWorkload(), RunConfig(runs=1))
        tripled = execute(MixedWorkload(), RunConfig(runs=3))
        assert single.cycles == tripled.cycles

    def test_failed_validation_raises(self):
        from repro.workloads.base import (
            Workload,
            WorkloadResultCheck,
        )

        class Broken(MixedWorkload):
            name = "broken"

            def validate(self, vm):
                return WorkloadResultCheck(False, "intentional")

        with pytest.raises(HarnessError, match="intentional"):
            execute(Broken(), RunConfig())


class TestTable1:
    def test_row_per_time_workload_plus_geomean(self, table1):
        assert [row.benchmark for row in table1.time_rows] == \
            ["mixed"]
        assert table1.geomean_row is not None
        assert table1.geomean_row.benchmark == "geom. mean"

    def test_throughput_rows_separate(self, table1):
        assert [row.benchmark for row in table1.throughput_rows] == \
            ["mixed-tp"]

    def test_time_overhead_formula(self, table1):
        row = table1.time_rows[0]
        expected = units.overhead_percent(row.value_original,
                                          row.value_spa)
        assert row.overhead_spa_percent == pytest.approx(expected)

    def test_throughput_overhead_formula(self, table1):
        row = table1.throughput_rows[0]
        expected = units.throughput_overhead_percent(
            row.value_original, row.value_spa)
        assert row.overhead_spa_percent == pytest.approx(expected)

    def test_spa_dwarfs_ipa(self, table1):
        for row in table1.rows:
            assert row.overhead_spa_percent > \
                20 * max(row.overhead_ipa_percent, 0.01)

    def test_raw_results_kept(self, table1):
        assert set(table1.raw["mixed"]) == {"original", "spa", "ipa"}

    def test_rendering(self, table1):
        text = render_table1(table1)
        assert "TABLE I" in text
        assert "overhead SPA" in text
        assert "mixed" in text
        assert "geom. mean" in text
        assert "ops/s" in text


class TestTable2:
    def test_row_shape(self, table2):
        row = table2.rows[0]
        assert row.benchmark == "mixed"
        assert row.jni_calls >= 1
        assert row.native_method_calls > 100
        assert 0 < row.percent_native < 100

    def test_ground_truth_audit_column(self, table2):
        row = table2.rows[0]
        assert row.measurement_error_points == pytest.approx(
            abs(row.percent_native - row.ground_truth_percent_native))
        assert row.measurement_error_points < 2.0

    def test_rendering(self, table2):
        text = render_table2(table2)
        assert "TABLE II" in text
        assert "% native execution" in text
        assert "JNI calls" in text
        assert "error [pts]" in text


class TestRunnerRepetition:
    """The runs > 1 median-selection path and execute_many."""

    def test_median_run_selected_from_odd_runs(self):
        # deterministic simulator: every repetition is identical, so
        # the median must equal any single run, for any runs count
        workload = MixedWorkload()
        baseline = execute(workload, RunConfig(runs=1))
        for runs in (3, 5):
            repeated = execute(workload, RunConfig(runs=runs))
            assert repeated.cycles == baseline.cycles
            assert repeated.instructions == baseline.instructions

    def test_runs_validation_catches_all_repetitions(self):
        calls = []

        class FlakyObserved(MixedWorkload):
            name = "flaky-observed"

            def validate(self, vm):
                calls.append(1)
                return super().validate(vm)

        execute(FlakyObserved(), RunConfig(runs=3))
        assert len(calls) == 3  # every repetition is validated

    def test_execute_many_matches_individual_executes(self):
        from repro.harness.runner import execute_many

        workload = MixedWorkload()
        configs = [RunConfig(agent=AgentSpec.none()),
                   RunConfig(agent=AgentSpec.ipa())]
        batched = execute_many(workload, configs)
        assert [r.agent_label for r in batched] == ["original", "ipa"]
        individual = [execute(workload, c) for c in configs]
        assert [r.cycles for r in batched] == \
            [r.cycles for r in individual]

    def test_execute_many_empty(self):
        from repro.harness.runner import execute_many

        assert execute_many(MixedWorkload(), []) == []


class TestParallelCells:
    """--jobs fan-out must be invisible in the results."""

    def test_registry_workloads_are_describable(self):
        from repro.harness.parallel import describable
        from repro.workloads import get_workload

        assert describable(get_workload("jess"))
        assert not describable(MixedWorkload())

    def test_parallel_matches_serial(self):
        from repro.harness.parallel import CellSpec, run_cells

        cells = [CellSpec("jess", agent_name="none"),
                 CellSpec("jess", agent_name="ipa"),
                 CellSpec("jess", agent_name="spa")]
        serial = run_cells(cells, jobs=1)
        fanned = run_cells(cells, jobs=3)
        assert [r.agent_label for r in fanned] == \
            ["original", "ipa", "spa"]
        assert [r.cycles for r in fanned] == \
            [r.cycles for r in serial]
        assert [r.instructions for r in fanned] == \
            [r.instructions for r in serial]

    def test_unknown_agent_rejected(self):
        from repro.harness.parallel import CellSpec, run_cell

        with pytest.raises(HarnessError, match="unknown agent"):
            run_cell(CellSpec("jess", agent_name="bogus"))

    def test_invalid_jobs_rejected(self):
        from repro.harness.parallel import run_cells

        with pytest.raises(HarnessError):
            run_cells([], jobs=0)

    def test_table1_falls_back_to_serial_for_adhoc_workloads(self):
        # MixedWorkload is not registry-backed, so jobs > 1 must fall
        # back to in-process execution and still produce the table
        table = build_table1([MixedWorkload()], jobs=4)
        assert [row.benchmark for row in table.time_rows] == ["mixed"]
