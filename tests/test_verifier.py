"""Bytecode verifier: structural and stack-discipline checks."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.verifier import verify_class, verify_method
from repro.errors import VerifyError


def _method(body, descriptor="()V", name="f"):
    c = ClassAssembler("v.T")
    with c.method(name, descriptor, static=True) as m:
        body(m)
    cf = c.build(verify=False)
    return cf.find_method(name, descriptor), cf.constant_pool


class TestStructuralChecks:
    def test_falling_off_the_end_rejected(self):
        method, pool = _method(lambda m: m.iconst(1).pop())
        with pytest.raises(VerifyError, match="falls off the end"):
            verify_method(method, pool)

    def test_empty_code_rejected(self):
        c = ClassAssembler("v.E")
        m = c.method("f", "()V", static=True)
        m.finish()
        cf = c.build(verify=False)
        with pytest.raises(VerifyError, match="empty code"):
            verify_method(cf.find_method("f", "()V"), cf.constant_pool)

    def test_branch_target_out_of_range(self):
        def body(m):
            m.emit_raw_goto = None
            from repro.bytecode.instructions import Instruction
            from repro.bytecode.opcodes import Op

            m._code.append(Instruction(Op.GOTO, 99))

        method, pool = _method(body)
        with pytest.raises(VerifyError, match="out of range"):
            verify_method(method, pool)

    def test_local_index_beyond_max_locals(self):
        c = ClassAssembler("v.L")
        m = c.method("f", "()V", static=True)
        m.iload(3).pop().return_()
        info = m.finish()
        info.max_locals = 1  # corrupt it
        cf = c.build(verify=False)
        with pytest.raises(VerifyError, match="max_locals"):
            verify_method(info, cf.constant_pool)

    def test_value_return_from_void_method(self):
        method, pool = _method(lambda m: m.iconst(1).ireturn())
        with pytest.raises(VerifyError, match="value return"):
            verify_method(method, pool)

    def test_void_return_from_value_method(self):
        method, pool = _method(lambda m: m.return_(),
                               descriptor="()I")
        with pytest.raises(VerifyError, match="void return"):
            verify_method(method, pool)

    def test_unresolved_label_rejected(self):
        from repro.bytecode.instructions import Instruction
        from repro.bytecode.opcodes import Op
        from repro.classfile.members import MethodInfo

        info = MethodInfo("f", "()V", 0x0008, max_locals=0,
                          code=[Instruction(Op.GOTO, "loop")])
        c = ClassAssembler("v.U")
        cf = c.build(verify=False)
        with pytest.raises(VerifyError, match="unresolved label"):
            verify_method(info, cf.constant_pool)


class TestStackDiscipline:
    def test_underflow_detected(self):
        method, pool = _method(lambda m: m.iadd().pop().return_())
        with pytest.raises(VerifyError, match="underflow"):
            verify_method(method, pool)

    def test_inconsistent_depth_at_merge(self):
        def body(m):
            m.iconst(0).ifeq("merge")
            m.iconst(1)          # one path pushes
            m.label("merge")
            m.return_()

        method, pool = _method(body)
        with pytest.raises(VerifyError, match="inconsistent stack"):
            verify_method(method, pool)

    def test_consistent_diamond_accepted(self):
        def body(m):
            m.iconst(0).ifeq("right")
            m.iconst(1).goto("merge")
            m.label("right")
            m.iconst(2)
            m.label("merge")
            m.pop().return_()

        method, pool = _method(body)
        assert verify_method(method, pool) >= 1

    def test_invoke_effects_from_descriptor(self):
        c = ClassAssembler("v.I")
        with c.method("callee", "(II)I", static=True) as m:
            m.iload(0).iload(1).iadd().ireturn()
        with c.method("f", "()I", static=True) as m:
            m.iconst(1).iconst(2)
            m.invokestatic("v.I", "callee", "(II)I")
            m.ireturn()
        cf = c.build(verify=False)
        assert verify_method(cf.find_method("f", "()I"),
                             cf.constant_pool) == 2

    def test_invoke_underflow_detected(self):
        c = ClassAssembler("v.I2")
        with c.method("callee", "(II)I", static=True) as m:
            m.iload(0).ireturn()
        m = c.method("f", "()I", static=True)
        m.iconst(1)
        m.invokestatic("v.I2", "callee", "(II)I")
        m.ireturn()
        m.finish()
        cf = c.build(verify=False)
        with pytest.raises(VerifyError, match="underflow"):
            verify_method(cf.find_method("f", "()I"),
                          cf.constant_pool)

    def test_handler_starts_at_depth_one(self):
        def body(m):
            m.label("a")
            m.iconst(1).pop()
            m.label("b")
            m.return_()
            m.label("h")
            m.pop().return_()   # pops the exception object
            m.try_catch("a", "b", "h", None)

        method, pool = _method(body)
        assert verify_method(method, pool) >= 1

    def test_returns_max_depth(self):
        method, pool = _method(
            lambda m: m.iconst(1).iconst(2).iconst(3).pop().pop().pop()
            .return_())
        assert verify_method(method, pool) == 3

    def test_native_methods_trivially_verify(self):
        c = ClassAssembler("v.N")
        info = c.native_method("n", "()V", static=True)
        cf = c.build(verify=False)
        assert verify_method(info, cf.constant_pool) == 0

    def test_verify_class_walks_all_methods(self):
        c = ClassAssembler("v.W")
        with c.method("ok", "()V", static=True) as m:
            m.return_()
        m = c.method("bad", "()V", static=True)
        m.iadd().return_()
        m.finish()
        cf = c.build(verify=False)
        with pytest.raises(VerifyError):
            verify_class(cf)

    def test_loop_verifies_once(self):
        def body(m):
            m.iconst(0).istore(0)
            m.label("top")
            m.iload(0).iconst(5).if_icmpge("end")
            m.iinc(0, 1).goto("top")
            m.label("end")
            m.return_()

        method, pool = _method(body)
        verify_method(method, pool)
