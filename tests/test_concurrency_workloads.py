"""The concurrency workload family (fj-kmeans, actors, reactors).

Each workload must validate against its host mirror at every core
count under both execution tiers, stay deterministic across repeat
runs, and keep out of :func:`full_suite` so the Table I/II goldens
are untouched by the scheduler work.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.workloads import (
    concurrency_suite,
    full_suite,
    get_workload,
)

RESULTS = Path(__file__).resolve().parent.parent / "results"
FAMILY = ("fj-kmeans", "actors", "reactors")


def _run(name, cores, template=True, runs=1):
    config = RunConfig(
        agent=AgentSpec.none(), runs=runs,
        vm_config=VMConfig(jit_policy=JitPolicy(
            template_tier=template), cores=cores))
    return execute(get_workload(name), config)


class TestValidation:
    @pytest.mark.parametrize("name", FAMILY)
    @pytest.mark.parametrize("cores", [1, 4])
    @pytest.mark.parametrize("template", [False, True],
                             ids=["interp", "template"])
    def test_mirror_agrees(self, name, cores, template):
        result = _run(name, cores, template)
        assert result.validation_ok, result.validation_detail
        assert result.operations > 0
        if cores == 1:
            assert result.core_clocks is None
        else:
            busy = [c for c in result.core_clocks if c > 0]
            assert len(busy) >= 2, result.core_clocks

    @pytest.mark.parametrize("name", FAMILY)
    def test_cores_do_not_change_the_answer(self, name):
        serial = _run(name, cores=1)
        scheduled = _run(name, cores=4)
        # scheduling costs cycles, never correctness: identical
        # console output (ops and checksum) at every core count
        assert scheduled.console == serial.console

    @pytest.mark.parametrize("name", FAMILY)
    def test_scheduled_runs_are_deterministic(self, name):
        first = _run(name, cores=4)
        second = _run(name, cores=4)
        assert first.cycles == second.cycles
        assert first.core_clocks == second.core_clocks
        assert first.console == second.console

    def test_fj_kmeans_contends_on_the_accumulator(self):
        from repro.harness.runner import _build_vm
        workload = get_workload("fj-kmeans")
        config = RunConfig(agent=AgentSpec.none(),
                           vm_config=VMConfig(cores=4))
        vm = _build_vm(workload, config)
        vm.launch(workload.main_class)
        assert vm.scheduler.monitor_contentions > 0
        assert vm.scheduler.context_switches > 0


class TestSuitePlacement:
    def test_family_is_registered(self):
        names = [w.name for w in concurrency_suite()]
        assert names == list(FAMILY)

    def test_family_not_in_full_suite(self):
        # the goldens predate the scheduler; the family must never
        # slip into the default table suites
        suite_names = {w.name for w in full_suite()}
        assert suite_names.isdisjoint(FAMILY)


class TestGoldenParityAtCoresOne:
    """--cores 1 is the legacy sequential model, bit for bit."""

    def test_table1_cores1_jobs4_matches_golden(self, capsys):
        assert main(["table1", "--cores", "1", "--jobs", "4",
                     "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert out == (RESULTS / "table1.txt").read_text()

    def test_table2_cli_accepts_cores(self, capsys):
        assert main(["table2", "--workloads", "actors", "--cores",
                     "2", "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "actors" in out
