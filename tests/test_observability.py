"""Observability subsystem: tracer, metrics, Chrome trace export,
flamegraph folding, and the zero-perturbation guarantee.

The hard rule under test: simulated cycle accounting is bit-identical
with tracing enabled, disabled, or absent.  Hooks *observe* the
per-thread cycle counters; they never charge them.
"""

import json

import pytest

from repro.cli import main
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.observability import (
    NULL_SINK,
    NULL_TRACER,
    MetricsRegistry,
    ObservabilityConfig,
    chrome_trace_doc,
    read_metrics_jsonl,
    summarize_metrics,
)
from repro.observability.metrics import NULL_METRICS
from repro.observability.sink import ObservabilitySink
from repro.observability.tracer import HARNESS_TID, Tracer
from repro.workloads import get_workload


class TestTracer:
    def test_complete_event_recorded(self):
        tracer = Tracer()
        tracer.register_thread(3, "worker")
        tracer.complete("span", "cat", 3, 10, 25, args={"k": 1})
        events = tracer.events_in_order()
        assert len(events) == 1
        ph, name, cat, tid, ts, dur, args, _seq = events[0]
        assert (ph, name, cat, tid, ts, dur) == \
            ("X", "span", "cat", 3, 10, 15)
        assert args == {"k": 1}

    def test_events_sorted_by_timestamp_then_sequence(self):
        tracer = Tracer()
        tracer.instant("b", "cat", 1, 50)
        tracer.instant("a", "cat", 2, 10)
        tracer.instant("c", "cat", 1, 10)
        names = [e[1] for e in tracer.events_in_order()]
        assert names == ["a", "c", "b"]

    def test_begin_end_pair(self):
        tracer = Tracer()
        tracer.begin("nest", "cat", 1, 5)
        tracer.end("nest", "cat", 1, 9)
        phases = [e[0] for e in tracer.events_in_order()]
        assert phases == ["B", "E"]

    def test_harness_tid_is_reserved(self):
        tracer = Tracer()
        assert tracer.thread_names[HARNESS_TID] == "harness"

    def test_null_tracer_is_inert(self):
        NULL_TRACER.register_thread(1, "x")
        NULL_TRACER.complete("a", "b", 1, 0, 1)
        NULL_TRACER.instant("a", "b", 1, 0)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.event_count == 0


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.inc("ops")
        reg.inc("ops", 4)
        reg.set_gauge("depth", 7)
        records = {r["name"]: r for r in reg.as_records({"w": "x"})}
        assert records["ops"]["value"] == 5
        assert records["ops"]["type"] == "counter"
        assert records["depth"]["value"] == 7
        assert records["ops"]["labels"] == {"w": "x"}

    def test_histogram_observes(self):
        reg = MetricsRegistry()
        for v in (3, 17, 900):
            reg.observe("lat", v)
        record = {r["name"]: r for r in reg.as_records({})}["lat"]
        assert record["type"] == "histogram"
        assert record["count"] == 3
        assert record["sum"] == 920
        assert record["min"] == 3
        assert record["max"] == 900

    def test_null_metrics_is_inert(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.observe("y", 3)
        assert not NULL_METRICS.enabled
        assert NULL_METRICS.as_records({}) == []

    def test_summarize_merges_cells(self):
        a = MetricsRegistry()
        a.inc("ops", 2)
        b = MetricsRegistry()
        b.inc("ops", 5)
        records = a.as_records({"cell": "a"}) + \
            b.as_records({"cell": "b"})
        summary = summarize_metrics(records)
        by_name = {row["name"]: row for row in summary}
        assert by_name["ops"]["total"] == 7
        assert by_name["ops"]["cells"] == 2


class TestMetricsPercentiles:
    def test_histogram_summary_estimates_percentiles(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("lat", v)
        row = summarize_metrics(reg.as_records({}))[0]
        # values 1..100 land in power-of-two buckets; the estimates
        # only need to be in the right region, bounded by min/max
        assert 1 <= row["p50"] <= 100
        assert row["p50"] <= row["p95"] <= row["p99"] <= 100
        assert "p50" in row and "p95" in row and "p99" in row

    def test_percentiles_merge_across_cells(self):
        a = MetricsRegistry()
        a.observe("lat", 10)
        b = MetricsRegistry()
        b.observe("lat", 100_000)
        row = summarize_metrics(a.as_records({}) + b.as_records({}))[0]
        assert row["count"] == 2
        assert 10 <= row["p50"] <= 100_000
        assert row["p99"] <= 100_000  # clamped to the recorded max

    def test_percentiles_clamped_to_recorded_range(self):
        from repro.observability.metrics import estimate_percentile
        # a single bucket holding all mass, with a tight real range
        assert estimate_percentile((10, 20, 30), [0, 10, 0, 0], 50,
                                   lo=12, hi=19) == pytest.approx(15.5)
        assert estimate_percentile((10,), [0, 0], 50) is None

    def test_single_observation(self):
        reg = MetricsRegistry()
        reg.observe("one", 42)
        row = summarize_metrics(reg.as_records({}))[0]
        assert row["p50"] == row["p95"] == row["p99"] == 42

    def test_formatted_summary_shows_percentiles(self):
        from repro.observability.metrics import format_metrics_summary
        reg = MetricsRegistry()
        for v in (5, 50, 500):
            reg.observe("lat", v)
        text = format_metrics_summary(summarize_metrics(
            reg.as_records({})))
        assert "p50~" in text and "p95~" in text and "p99~" in text

    def test_records_without_histogram_shape_still_summarize(self):
        # old-format records (no bounds/bucket_counts) must not crash
        rows = summarize_metrics([
            {"name": "lat", "type": "histogram", "count": 2,
             "sum": 30, "min": 10, "max": 20}])
        assert rows[0]["count"] == 2
        assert "p50" not in rows[0]


class TestMetricsJsonlRobustness:
    def _read(self, tmp_path, text):
        from repro.observability.metrics import read_metrics_jsonl
        path = tmp_path / "metrics.jsonl"
        path.write_text(text)
        return read_metrics_jsonl(str(path))

    def test_empty_file(self, tmp_path):
        assert self._read(tmp_path, "") == []

    def test_blank_lines_skipped(self, tmp_path):
        records = self._read(
            tmp_path, '\n{"name": "a", "type": "counter"}\n\n\n')
        assert len(records) == 1

    def test_truncated_final_line_dropped_silently(self, tmp_path,
                                                   capsys):
        records = self._read(
            tmp_path,
            '{"name": "a", "type": "counter", "value": 1}\n'
            '{"name": "b", "type": "coun')
        assert len(records) == 1
        assert records[0]["name"] == "a"
        assert capsys.readouterr().err == ""

    def test_undecodable_midfile_line_warns_and_skips(self, tmp_path,
                                                      capsys):
        records = self._read(
            tmp_path,
            '{"name": "a", "type": "counter", "value": 1}\n'
            'not json at all\n'
            '{"name": "b", "type": "counter", "value": 2}\n')
        assert [r["name"] for r in records] == ["a", "b"]
        assert "undecodable" in capsys.readouterr().err

    def test_non_dict_lines_ignored(self, tmp_path):
        assert self._read(tmp_path, '[1, 2]\n"text"\n3\n') == []

    def test_damaged_records_skipped_by_summarize(self):
        rows = summarize_metrics([
            {"type": "counter", "value": 1},       # no name
            {"name": "ok", "type": "counter", "value": 2},
            {"name": "bare", "type": "counter"},   # no value
        ])
        by_name = {row["name"]: row for row in rows}
        assert by_name["ok"]["total"] == 2
        assert by_name["bare"]["total"] == 0


class TestFlamegraphEscaping:
    class _Node:
        def __init__(self, inclusive, native=False):
            self.inclusive_cycles = inclusive
            self.is_native = native
            self.children = {}

        def walk(self, chain=("<thread>",)):
            yield chain, self
            for name, child in self.children.items():
                yield from child.walk(chain + (name,))

    def test_structural_characters_sanitized(self):
        from repro.observability import folded_lines
        root = self._Node(100)
        root.children["evil;frame\nname"] = self._Node(60,
                                                      native=True)
        root.children["plain.method"] = self._Node(40)
        lines = folded_lines({"thread;one\r": root})
        assert lines == [
            "thread:one_;evil:frame_name_[k] 60",
            "thread:one_;plain.method 40",
        ]
        # the folded format stays parseable: frame;frame weight
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert "\n" not in stack


class TestSink:
    def test_null_sink_disabled(self):
        assert not NULL_SINK.enabled
        assert NULL_SINK.tracer is NULL_TRACER

    def test_config_selects_components(self):
        sink = ObservabilitySink(ObservabilityConfig(trace=True,
                                                     metrics=False))
        assert sink.tracer.enabled
        assert not sink.metrics.enabled

    def test_capture_shape(self):
        sink = ObservabilitySink(ObservabilityConfig(trace=True,
                                                     metrics=True))
        sink.tracer.register_thread(1, "main")
        sink.tracer.complete("s", "c", 1, 0, 4)
        sink.metrics.inc("n")
        doc = sink.capture(labels={"workload": "w"}, clock_hz=1000)
        assert doc["labels"] == {"workload": "w"}
        assert doc["clock_hz"] == 1000
        assert doc["thread_names"]["1"] == "main"
        assert len(doc["events"]) == 1
        assert doc["metrics"][0]["name"] == "n"


class TestChromeTraceExport:
    """`repro trace compress --trace-out t.json` emits valid Chrome
    trace-event JSON (the ISSUE's acceptance check)."""

    @pytest.fixture(scope="class")
    def trace_doc(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "t.json"
        assert main(["trace", "compress", "--trace-out",
                     str(out)]) == 0
        return json.loads(out.read_text())

    def test_toplevel_schema(self, trace_doc):
        assert "traceEvents" in trace_doc
        assert trace_doc["metadata"]["time_unit"] == "simulated-cycles"
        assert trace_doc["displayTimeUnit"] == "ms"

    def test_event_schema(self, trace_doc):
        events = trace_doc["traceEvents"]
        assert events
        for event in events:
            for key in ("ph", "name", "pid", "tid"):
                assert key in event, event
            if event["ph"] == "X":
                assert "ts" in event
                assert event["dur"] >= 0
            elif event["ph"] == "i":
                assert event["s"] == "t"

    def test_metadata_names_process_and_threads(self, trace_doc):
        meta = [e for e in trace_doc["traceEvents"]
                if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names

    def test_phase_spans_present(self, trace_doc):
        cats = {e.get("cat") for e in trace_doc["traceEvents"]}
        assert "classload" in cats
        assert "harness" in cats
        assert "thread" in cats

    def test_timestamps_are_simulated_cycles(self, trace_doc):
        launch = [e for e in trace_doc["traceEvents"]
                  if e["name"].startswith("launch:")]
        assert launch and all(e["ts"] >= 0 for e in launch)


class TestFlamegraph:
    def test_profile_writes_folded_stacks(self, tmp_path, capsys):
        out = tmp_path / "out.folded"
        assert main(["profile", "jess", "--agent", "callchain",
                     "--flamegraph", str(out)]) == 0
        assert "folded stacks" in capsys.readouterr().out
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            frames = stack.split(";")
            assert len(frames) >= 2          # thread;frame...
        # native frames carry the perf-style kernel-ish suffix
        assert any("_[k]" in line for line in lines)

    def test_flamegraph_requires_callchain(self, tmp_path, capsys):
        out = tmp_path / "out.folded"
        assert main(["profile", "jess", "--agent", "ipa",
                     "--flamegraph", str(out)]) == 2
        assert "callchain" in capsys.readouterr().err
        assert not out.exists()


class TestCliErrors:
    def test_unknown_agent_exits_2_with_valid_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "jess", "--agent", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown agent 'bogus'" in err
        for name in ("callchain", "ipa", "none", "spa"):
            assert name in err


class TestMetricsCli:
    def test_trace_with_metrics_then_summary(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main(["trace", "jess", "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        records = read_metrics_jsonl(str(metrics))
        names = {r["name"] for r in records}
        assert "instructions_retired" in names
        assert "classes_loaded" in names
        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "instructions_retired" in out

    def test_metrics_empty_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["metrics", str(empty)]) == 1


class TestZeroPerturbation:
    """Cycle accounting must be bit-identical with observability on,
    off, or absent."""

    @pytest.mark.parametrize("agent", [AgentSpec.none, AgentSpec.spa,
                                       AgentSpec.ipa,
                                       AgentSpec.callchain])
    def test_cycles_identical_with_and_without(self, agent):
        workload = get_workload("jess")
        plain = execute(workload, RunConfig(agent=agent()))
        observed = execute(workload, RunConfig(
            agent=agent(),
            observability=ObservabilityConfig(trace=True,
                                              metrics=True)))
        assert observed.cycles == plain.cycles
        assert observed.instructions == plain.instructions
        assert observed.ground_truth_native_fraction == \
            plain.ground_truth_native_fraction
        assert observed.observability is not None
        assert plain.observability is None

    def test_trace_events_do_not_charge_cycles(self):
        workload = get_workload("db")
        observed = execute(workload, RunConfig(
            agent=AgentSpec.ipa(),
            observability=ObservabilityConfig(trace=True,
                                              metrics=False)))
        doc = chrome_trace_doc([observed.observability])
        assert doc["traceEvents"]
        gauge = {r["name"]: r for r in
                 (observed.observability["metrics"] or [])}
        assert gauge == {}  # metrics off ⇒ no records, trace still on
