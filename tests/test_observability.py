"""Observability subsystem: tracer, metrics, Chrome trace export,
flamegraph folding, and the zero-perturbation guarantee.

The hard rule under test: simulated cycle accounting is bit-identical
with tracing enabled, disabled, or absent.  Hooks *observe* the
per-thread cycle counters; they never charge them.
"""

import json

import pytest

from repro.cli import main
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.observability import (
    NULL_SINK,
    NULL_TRACER,
    MetricsRegistry,
    ObservabilityConfig,
    chrome_trace_doc,
    read_metrics_jsonl,
    summarize_metrics,
)
from repro.observability.metrics import NULL_METRICS
from repro.observability.sink import ObservabilitySink
from repro.observability.tracer import HARNESS_TID, Tracer
from repro.workloads import get_workload


class TestTracer:
    def test_complete_event_recorded(self):
        tracer = Tracer()
        tracer.register_thread(3, "worker")
        tracer.complete("span", "cat", 3, 10, 25, args={"k": 1})
        events = tracer.events_in_order()
        assert len(events) == 1
        ph, name, cat, tid, ts, dur, args, _seq = events[0]
        assert (ph, name, cat, tid, ts, dur) == \
            ("X", "span", "cat", 3, 10, 15)
        assert args == {"k": 1}

    def test_events_sorted_by_timestamp_then_sequence(self):
        tracer = Tracer()
        tracer.instant("b", "cat", 1, 50)
        tracer.instant("a", "cat", 2, 10)
        tracer.instant("c", "cat", 1, 10)
        names = [e[1] for e in tracer.events_in_order()]
        assert names == ["a", "c", "b"]

    def test_begin_end_pair(self):
        tracer = Tracer()
        tracer.begin("nest", "cat", 1, 5)
        tracer.end("nest", "cat", 1, 9)
        phases = [e[0] for e in tracer.events_in_order()]
        assert phases == ["B", "E"]

    def test_harness_tid_is_reserved(self):
        tracer = Tracer()
        assert tracer.thread_names[HARNESS_TID] == "harness"

    def test_null_tracer_is_inert(self):
        NULL_TRACER.register_thread(1, "x")
        NULL_TRACER.complete("a", "b", 1, 0, 1)
        NULL_TRACER.instant("a", "b", 1, 0)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.event_count == 0


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.inc("ops")
        reg.inc("ops", 4)
        reg.set_gauge("depth", 7)
        records = {r["name"]: r for r in reg.as_records({"w": "x"})}
        assert records["ops"]["value"] == 5
        assert records["ops"]["type"] == "counter"
        assert records["depth"]["value"] == 7
        assert records["ops"]["labels"] == {"w": "x"}

    def test_histogram_observes(self):
        reg = MetricsRegistry()
        for v in (3, 17, 900):
            reg.observe("lat", v)
        record = {r["name"]: r for r in reg.as_records({})}["lat"]
        assert record["type"] == "histogram"
        assert record["count"] == 3
        assert record["sum"] == 920
        assert record["min"] == 3
        assert record["max"] == 900

    def test_null_metrics_is_inert(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.observe("y", 3)
        assert not NULL_METRICS.enabled
        assert NULL_METRICS.as_records({}) == []

    def test_summarize_merges_cells(self):
        a = MetricsRegistry()
        a.inc("ops", 2)
        b = MetricsRegistry()
        b.inc("ops", 5)
        records = a.as_records({"cell": "a"}) + \
            b.as_records({"cell": "b"})
        summary = summarize_metrics(records)
        by_name = {row["name"]: row for row in summary}
        assert by_name["ops"]["total"] == 7
        assert by_name["ops"]["cells"] == 2


class TestSink:
    def test_null_sink_disabled(self):
        assert not NULL_SINK.enabled
        assert NULL_SINK.tracer is NULL_TRACER

    def test_config_selects_components(self):
        sink = ObservabilitySink(ObservabilityConfig(trace=True,
                                                     metrics=False))
        assert sink.tracer.enabled
        assert not sink.metrics.enabled

    def test_capture_shape(self):
        sink = ObservabilitySink(ObservabilityConfig(trace=True,
                                                     metrics=True))
        sink.tracer.register_thread(1, "main")
        sink.tracer.complete("s", "c", 1, 0, 4)
        sink.metrics.inc("n")
        doc = sink.capture(labels={"workload": "w"}, clock_hz=1000)
        assert doc["labels"] == {"workload": "w"}
        assert doc["clock_hz"] == 1000
        assert doc["thread_names"]["1"] == "main"
        assert len(doc["events"]) == 1
        assert doc["metrics"][0]["name"] == "n"


class TestChromeTraceExport:
    """`repro trace compress --trace-out t.json` emits valid Chrome
    trace-event JSON (the ISSUE's acceptance check)."""

    @pytest.fixture(scope="class")
    def trace_doc(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "t.json"
        assert main(["trace", "compress", "--trace-out",
                     str(out)]) == 0
        return json.loads(out.read_text())

    def test_toplevel_schema(self, trace_doc):
        assert "traceEvents" in trace_doc
        assert trace_doc["metadata"]["time_unit"] == "simulated-cycles"
        assert trace_doc["displayTimeUnit"] == "ms"

    def test_event_schema(self, trace_doc):
        events = trace_doc["traceEvents"]
        assert events
        for event in events:
            for key in ("ph", "name", "pid", "tid"):
                assert key in event, event
            if event["ph"] == "X":
                assert "ts" in event
                assert event["dur"] >= 0
            elif event["ph"] == "i":
                assert event["s"] == "t"

    def test_metadata_names_process_and_threads(self, trace_doc):
        meta = [e for e in trace_doc["traceEvents"]
                if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names

    def test_phase_spans_present(self, trace_doc):
        cats = {e.get("cat") for e in trace_doc["traceEvents"]}
        assert "classload" in cats
        assert "harness" in cats
        assert "thread" in cats

    def test_timestamps_are_simulated_cycles(self, trace_doc):
        launch = [e for e in trace_doc["traceEvents"]
                  if e["name"].startswith("launch:")]
        assert launch and all(e["ts"] >= 0 for e in launch)


class TestFlamegraph:
    def test_profile_writes_folded_stacks(self, tmp_path, capsys):
        out = tmp_path / "out.folded"
        assert main(["profile", "jess", "--agent", "callchain",
                     "--flamegraph", str(out)]) == 0
        assert "folded stacks" in capsys.readouterr().out
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            frames = stack.split(";")
            assert len(frames) >= 2          # thread;frame...
        # native frames carry the perf-style kernel-ish suffix
        assert any("_[k]" in line for line in lines)

    def test_flamegraph_requires_callchain(self, tmp_path, capsys):
        out = tmp_path / "out.folded"
        assert main(["profile", "jess", "--agent", "ipa",
                     "--flamegraph", str(out)]) == 2
        assert "callchain" in capsys.readouterr().err
        assert not out.exists()


class TestCliErrors:
    def test_unknown_agent_exits_2_with_valid_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "jess", "--agent", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown agent 'bogus'" in err
        for name in ("callchain", "ipa", "none", "spa"):
            assert name in err


class TestMetricsCli:
    def test_trace_with_metrics_then_summary(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main(["trace", "jess", "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        records = read_metrics_jsonl(str(metrics))
        names = {r["name"] for r in records}
        assert "instructions_retired" in names
        assert "classes_loaded" in names
        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "instructions_retired" in out

    def test_metrics_empty_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["metrics", str(empty)]) == 1


class TestZeroPerturbation:
    """Cycle accounting must be bit-identical with observability on,
    off, or absent."""

    @pytest.mark.parametrize("agent", [AgentSpec.none, AgentSpec.spa,
                                       AgentSpec.ipa,
                                       AgentSpec.callchain])
    def test_cycles_identical_with_and_without(self, agent):
        workload = get_workload("jess")
        plain = execute(workload, RunConfig(agent=agent()))
        observed = execute(workload, RunConfig(
            agent=agent(),
            observability=ObservabilityConfig(trace=True,
                                              metrics=True)))
        assert observed.cycles == plain.cycles
        assert observed.instructions == plain.instructions
        assert observed.ground_truth_native_fraction == \
            plain.ground_truth_native_fraction
        assert observed.observability is not None
        assert plain.observability is None

    def test_trace_events_do_not_charge_cycles(self):
        workload = get_workload("db")
        observed = execute(workload, RunConfig(
            agent=AgentSpec.ipa(),
            observability=ObservabilityConfig(trace=True,
                                              metrics=False)))
        doc = chrome_trace_doc([observed.observability])
        assert doc["traceEvents"]
        gauge = {r["name"]: r for r in
                 (observed.observability["metrics"] or [])}
        assert gauge == {}  # metrics off ⇒ no records, trace still on
