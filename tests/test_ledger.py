"""Run ledger, `repro runs` views, HTML reports, structured logging.

The ledger's hard rule is pinned alongside the features: tables and
cycle accounting are bit-identical with the ledger on or off, serially
and under ``--jobs 4`` (the golden files are the reference rendering).
"""

import json
import os
import stat
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import LedgerError
from repro.observability import logging as obs_logging
from repro.observability.ledger import (
    Ledger,
    diff_manifests,
    filter_manifests,
    new_manifest,
    render_sparkline,
    resolve_ledger_dir,
    trend_report,
)

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _manifest(command="profile", run_id=None, workloads=None,
              config=None):
    manifest = new_manifest(command, config or {"workload": "jess",
                                                "agent": "ipa"})
    if run_id is not None:
        manifest["run_id"] = run_id
    if workloads is not None:
        manifest["outcome"]["workloads"] = workloads
    return manifest


class TestLedgerRoundTrip:
    def test_write_list_load(self, tmp_path):
        ledger = Ledger(str(tmp_path / "runs"))
        manifest = _manifest(run_id="20260101T000000Z-aaaaaa")
        path = ledger.write(manifest)
        assert path is not None and os.path.exists(path)
        assert ledger.run_ids() == ["20260101T000000Z-aaaaaa"]
        loaded = ledger.load("20260101T000000Z-aaaaaa")
        assert loaded == json.loads(json.dumps(manifest))

    def test_load_by_unique_prefix(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.write(_manifest(run_id="20260101T000000Z-aaaaaa"))
        ledger.write(_manifest(run_id="20260102T000000Z-bbbbbb"))
        assert ledger.load("20260102")["run_id"] == \
            "20260102T000000Z-bbbbbb"

    def test_ambiguous_prefix_raises(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.write(_manifest(run_id="20260101T000000Z-aaaaaa"))
        ledger.write(_manifest(run_id="20260101T000001Z-bbbbbb"))
        with pytest.raises(LedgerError, match="ambiguous"):
            ledger.load("20260101")

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="no run"):
            Ledger(str(tmp_path)).load("nope")

    def test_latest_and_chronological_order(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.write(_manifest(run_id="20260102T000000Z-bbbbbb"))
        ledger.write(_manifest(run_id="20260101T000000Z-aaaaaa"))
        assert ledger.latest()["run_id"] == "20260102T000000Z-bbbbbb"

    def test_latest_on_empty_ledger_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="empty"):
            Ledger(str(tmp_path / "void")).latest()

    def test_load_all_skips_corrupt_manifest(self, tmp_path):
        ledger = Ledger(str(tmp_path))
        ledger.write(_manifest(run_id="20260101T000000Z-aaaaaa"))
        (tmp_path / "20260102T000000Z-cccccc.json").write_text(
            '{"version": 1, "run_id": trunc')
        manifests = ledger.load_all()
        assert [m["run_id"] for m in manifests] == \
            ["20260101T000000Z-aaaaaa"]

    def test_unwritable_directory_returns_none(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        read_only = tmp_path / "frozen"
        read_only.mkdir()
        read_only.chmod(stat.S_IRUSR | stat.S_IXUSR)
        try:
            assert Ledger(str(read_only)).write(_manifest()) is None
        finally:
            read_only.chmod(stat.S_IRWXU)

    def test_unwritable_file_as_directory(self, tmp_path):
        blocker = tmp_path / "runs"
        blocker.write_text("not a directory")
        assert Ledger(str(blocker)).write(_manifest()) is None

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", "/env/dir")
        assert resolve_ledger_dir("/flag/dir") == "/flag/dir"
        assert resolve_ledger_dir(None) == "/env/dir"
        monkeypatch.delenv("REPRO_LEDGER_DIR")
        assert resolve_ledger_dir(None) == ".repro-runs"


class TestFiltersAndTrend:
    def test_filter_by_command_agent_workload(self):
        manifests = [
            _manifest("profile", workloads={"jess": {}},
                      config={"agent": "ipa"}),
            _manifest("bench", workloads={"db": {}},
                      config={"agent": "none", "tier": "interp"}),
        ]
        assert len(filter_manifests(manifests, command="bench")) == 1
        assert len(filter_manifests(manifests, agent="ipa")) == 1
        assert len(filter_manifests(manifests, workload="db")) == 1
        assert len(filter_manifests(manifests, tier="interp")) == 1
        assert len(filter_manifests(manifests, command="bench",
                                    agent="ipa")) == 0

    def test_trend_flags_instr_s_regression(self):
        manifests = [
            _manifest(run_id="a", workloads={
                "jess": {"instructions_per_second": 1000}}),
            _manifest(run_id="b", workloads={
                "jess": {"instructions_per_second": 800}}),
        ]
        ok, lines = trend_report(manifests, 5.0)
        assert not ok
        assert any("REGRESSION jess.instructions_per_second" in line
                   for line in lines)

    def test_trend_overhead_is_smaller_better(self):
        manifests = [
            _manifest(run_id="a", workloads={
                "jess": {"overhead_ipa_percent": 10.0}}),
            _manifest(run_id="b", workloads={
                "jess": {"overhead_ipa_percent": 20.0}}),
        ]
        ok, lines = trend_report(manifests, 5.0)
        assert not ok
        # ...and an improvement in the same field passes
        ok, _ = trend_report(list(reversed(manifests)), 5.0)
        assert ok

    def test_trend_within_budget_is_ok(self):
        manifests = [
            _manifest(run_id="a", workloads={
                "jess": {"instructions_per_second": 1000}}),
            _manifest(run_id="b", workloads={
                "jess": {"instructions_per_second": 990}}),
        ]
        ok, lines = trend_report(manifests, 5.0)
        assert ok
        assert any("OK" in line for line in lines)

    def test_neutral_fields_never_gate(self):
        manifests = [
            _manifest(run_id="a",
                      workloads={"jess": {"percent_native": 10.0}}),
            _manifest(run_id="b",
                      workloads={"jess": {"percent_native": 50.0}}),
        ]
        ok, _ = trend_report(manifests, 5.0)
        assert ok

    def test_trend_skips_runs_without_per_workload_cells(self):
        """analyze/loadgen/serve manifests have no numeric cells;
        trend must note the skip instead of charting empty series."""
        manifests = [
            _manifest("loadgen", run_id="a"),
            _manifest("analyze", run_id="b"),
            _manifest("analyze", run_id="c"),
            _manifest("profile", run_id="d", workloads={
                "jess": {"instructions_per_second": 1000}}),
        ]
        ok, lines = trend_report(manifests, 5.0)
        assert ok
        assert any("skipped 1 loadgen run(s)" in line
                   for line in lines)
        assert any("skipped 2 analyze run(s)" in line
                   for line in lines)
        # the charted series only reflect the contributing run
        assert any("jess.instructions_per_second" in line
                   and "n=1" in line for line in lines)

    def test_trend_all_runs_skipped_still_reports(self):
        ok, lines = trend_report([_manifest("loadgen", run_id="a")])
        assert ok
        assert any("skipped 1 loadgen" in line for line in lines)
        assert any("no per-workload series" in line for line in lines)

    def test_diff_always_surfaces_tier_and_cores(self):
        a = _manifest(config={"tier": "template", "cores": 1,
                              "agent": "ipa"})
        b = _manifest(config={"tier": "template", "cores": 1,
                              "agent": "spa"})
        lines = diff_manifests(a, b)
        assert "config tier: template (same)" in lines
        assert "config cores: 1 (same)" in lines
        assert "config agent: ipa -> spa" in lines
        changed = diff_manifests(
            a, _manifest(config={"tier": "interp", "cores": 4,
                                 "agent": "ipa"}))
        assert "config tier: template -> interp" in changed
        assert "config cores: 1 -> 4" in changed
        # and never both forms for the same key
        assert not any("tier" in line and "(same)" in line
                       for line in changed)

    def test_diff_blocked_split_with_same_markers(self):
        a = _manifest()
        a["outcome"].update(blocked_cycles=1000, wall_cycles=5000,
                            device_clocks={"disk": 900, "net": 100})
        b = _manifest()
        b["outcome"].update(blocked_cycles=1000, wall_cycles=6000,
                            device_clocks={"disk": 1900, "net": 100})
        lines = diff_manifests(a, b)
        assert "outcome blocked_cycles: 1,000 (same)" in lines
        assert "outcome wall_cycles: 5,000 -> 6,000" in lines
        assert "device disk: 900 -> 1,900 cycles" in lines
        assert "device net: 100 cycles (same)" in lines

    def test_diff_skips_blocked_split_when_nothing_blocked(self):
        lines = diff_manifests(_manifest(), _manifest())
        assert not any("blocked" in line or "device" in line
                       for line in lines)

    def test_sparkline_shape(self):
        spark = render_sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(spark) == 4
        assert spark[0] == "▁" and spark[-1] == "█"
        assert render_sparkline([5.0, 5.0]) == "▁▁"
        assert render_sparkline([]) == ""


class TestRunsCli:
    @pytest.fixture()
    def recorded(self, tmp_path, capsys):
        """Two real profile runs recorded into a fresh ledger.

        Returns ``(ledger_dir, {agent_label: run_id})`` — the mapping,
        not a listing order, because two runs started within the same
        second differ only in the random run-id suffix.
        """
        ledger_dir = str(tmp_path / "runs")
        assert main(["profile", "jess", "--agent", "ipa",
                     "--ledger-dir", ledger_dir]) == 0
        assert main(["profile", "jess", "--agent", "spa",
                     "--ledger-dir", ledger_dir]) == 0
        capsys.readouterr()
        by_agent = {m["config"]["agent"]: m["run_id"]
                    for m in Ledger(ledger_dir).load_all()}
        assert set(by_agent) == {"ipa", "spa"}
        return ledger_dir, by_agent

    def test_profile_records_manifest(self, recorded):
        ledger_dir, by_agent = recorded
        manifest = Ledger(ledger_dir).load(by_agent["ipa"])
        assert manifest["command"] == "profile"
        assert manifest["config"]["workload"] == "jess"
        assert manifest["config"]["agent"] == "ipa"
        assert manifest["outcome"]["exit_status"] == 0
        assert manifest["outcome"]["wall_seconds"] >= 0
        assert manifest["outcome"]["instructions"] > 0
        assert "timestamp_utc" in manifest["provenance"]

    def test_runs_list(self, recorded, capsys):
        ledger_dir, by_agent = recorded
        assert main(["runs", "list",
                     "--ledger-dir", ledger_dir]) == 0
        out = capsys.readouterr().out
        for run_id in by_agent.values():
            assert run_id in out

    def test_runs_list_filters(self, recorded, capsys):
        ledger_dir, by_agent = recorded
        assert main(["runs", "list", "--agent", "spa",
                     "--ledger-dir", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert by_agent["spa"] in out
        assert by_agent["ipa"] not in out

    def test_runs_show_by_prefix(self, recorded, capsys):
        ledger_dir, by_agent = recorded
        run_id = by_agent["ipa"]
        assert main(["runs", "show", run_id[:-2],
                     "--ledger-dir", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "workload = jess" in out

    def test_runs_diff(self, recorded, capsys):
        ledger_dir, by_agent = recorded
        assert main(["runs", "diff", by_agent["ipa"],
                     by_agent["spa"],
                     "--ledger-dir", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert "config agent: ipa -> spa" in out

    def test_runs_trend_ok(self, recorded, capsys):
        ledger_dir, _ = recorded
        assert main(["runs", "trend", "--max-regression", "5",
                     "--ledger-dir", ledger_dir]) == 0
        assert "OK" in capsys.readouterr().out

    def test_runs_trend_gates_injected_regression(self, tmp_path,
                                                  capsys):
        ledger = Ledger(str(tmp_path))
        ledger.write(_manifest(run_id="20260101T000000Z-aaaaaa",
                               workloads={"jess": {
                                   "instructions_per_second": 1000}}))
        ledger.write(_manifest(run_id="20260102T000000Z-bbbbbb",
                               workloads={"jess": {
                                   "instructions_per_second": 500}}))
        assert main(["runs", "trend", "--max-regression", "5",
                     "--ledger-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_unknown_run_id_exits_2(self, tmp_path, capsys):
        assert main(["runs", "show", "nope",
                     "--ledger-dir", str(tmp_path)]) == 2
        assert "no run" in capsys.readouterr().err

    def test_no_ledger_writes_nothing(self, tmp_path, capsys):
        ledger_dir = tmp_path / "runs"
        assert main(["profile", "jess", "--agent", "none",
                     "--no-ledger",
                     "--ledger-dir", str(ledger_dir)]) == 0
        assert not ledger_dir.exists()

    def test_unwritable_ledger_warns_but_run_succeeds(self, tmp_path,
                                                      capsys):
        blocker = tmp_path / "runs"
        blocker.write_text("occupied")  # open() inside will fail
        assert main(["profile", "jess", "--agent", "none",
                     "--ledger-dir", str(blocker)]) == 0
        captured = capsys.readouterr()
        assert "cycles" in captured.out  # the measurement completed
        assert "ledger" in captured.err  # ...and the warning landed


class TestTableParityAndReport:
    """One real table2 run feeds three checks: golden parity with the
    ledger on, manifest round-trip, and HTML report generation."""

    @pytest.fixture(scope="class")
    def table2_run(self, tmp_path_factory):
        ledger_dir = str(tmp_path_factory.mktemp("ledger"))
        import contextlib
        import io
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            assert main(["table2", "--ledger-dir", ledger_dir]) == 0
        return ledger_dir, out.getvalue()

    def test_table2_with_ledger_matches_golden(self, table2_run):
        _, out = table2_run
        assert out == (RESULTS / "table2.txt").read_text()

    def test_no_ledger_jobs4_matches_golden(self, capsys):
        assert main(["table2", "--no-ledger", "--jobs", "4"]) == 0
        assert capsys.readouterr().out == \
            (RESULTS / "table2.txt").read_text()

    def test_manifest_embeds_rendered_table(self, table2_run):
        ledger_dir, out = table2_run
        manifest = Ledger(ledger_dir).latest()
        assert manifest["command"] == "table2"
        # stdout carries the table plus print()'s final newline
        assert manifest["outcome"]["tables"]["table2"] + "\n" == out
        workloads = manifest["outcome"]["workloads"]
        assert "jess" in workloads and "compress" in workloads
        assert "Geometric" not in workloads

    def test_report_from_real_run(self, table2_run, tmp_path,
                                  capsys):
        ledger_dir, _ = table2_run
        html_path = tmp_path / "report.html"
        assert main(["report", "--latest",
                     "--ledger-dir", ledger_dir,
                     "--output", str(html_path)]) == 0
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<h2>Results</h2>" in html
        assert "jess" in html and "compress" in html
        assert "<svg" in html
        assert "prefers-color-scheme: dark" in html

    def test_report_empty_ledger_exits_2(self, tmp_path, capsys):
        assert main(["report", "--latest",
                     "--ledger-dir", str(tmp_path / "void")]) == 2
        assert "empty" in capsys.readouterr().err


class TestStructuredLogging:
    @pytest.fixture(autouse=True)
    def restore(self):
        state = obs_logging.snapshot()
        yield
        obs_logging.configure(level=state[0], json_mode=state[1])

    def test_key_value_line(self, capsys):
        obs_logging.configure(level="debug", json_mode=False)
        obs_logging.get_logger("test").info(
            "hello world", workload="jess", n=3)
        err = capsys.readouterr().err
        assert 'level=info' in err
        assert 'logger=test' in err
        assert 'event="hello world"' in err
        assert 'workload=jess' in err and 'n=3' in err

    def test_level_threshold(self, capsys):
        obs_logging.configure(level="warning", json_mode=False)
        log = obs_logging.get_logger("test")
        log.info("suppressed")
        log.warning("visible")
        err = capsys.readouterr().err
        assert "suppressed" not in err
        assert "visible" in err

    def test_json_mode(self, capsys):
        obs_logging.configure(level="info", json_mode=True)
        obs_logging.get_logger("test").info("event name", k="v")
        record = json.loads(capsys.readouterr().err.strip())
        assert record["level"] == "info"
        assert record["event"] == "event name"
        assert record["k"] == "v"

    def test_worker_prefix(self, capsys):
        obs_logging.configure(level="info", json_mode=False,
                              worker="w03")
        obs_logging.get_logger("test").info("from a worker")
        assert "worker=w03" in capsys.readouterr().err

    def test_cli_log_level_flag_positions(self):
        """--log-level parses both before and after the subcommand."""
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["--log-level", "debug", "list"])
        assert args.log_level == "debug"
        args = build_parser().parse_args(
            ["profile", "jess", "--log-level", "debug"])
        assert args.log_level == "debug"
