"""The blocking-I/O workload family (io-logs, io-kv, io-echo).

Each workload must validate against its host mirror at every core
count under both execution tiers, block for the same number of cycles
no matter how many cores run it, and stay out of :func:`full_suite`
so the Table I/II goldens never see a blocking native."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.workloads import full_suite, get_workload, io_suite

FAMILY = ("io-logs", "io-kv", "io-echo")


def _run(name, cores=1, template=True, scale=1):
    config = RunConfig(
        agent=AgentSpec.none(),
        vm_config=VMConfig(jit_policy=JitPolicy(
            template_tier=template), cores=cores))
    return execute(get_workload(name, scale=scale), config)


class TestValidation:
    @pytest.mark.parametrize("name", FAMILY)
    @pytest.mark.parametrize("cores", [1, 4])
    @pytest.mark.parametrize("template", [False, True],
                             ids=["interp", "template"])
    def test_mirror_agrees(self, name, cores, template):
        result = _run(name, cores, template)
        assert result.validation_ok, result.validation_detail
        assert result.blocked_cycles > 0
        assert result.wall_cycles > result.cycles

    @pytest.mark.parametrize("name", FAMILY)
    def test_cores_do_not_change_the_answer(self, name):
        serial = _run(name, cores=1)
        scheduled = _run(name, cores=4)
        assert scheduled.console == serial.console
        # a single-threaded blocking workload waits the same cycles
        # whether the parked core could have run someone else or not
        assert scheduled.blocked_cycles == serial.blocked_cycles
        assert scheduled.device_clocks == serial.device_clocks

    @pytest.mark.parametrize("name", FAMILY)
    def test_scale_increases_blocking(self, name):
        small = _run(name, scale=1)
        large = _run(name, scale=3)
        assert large.blocked_cycles > small.blocked_cycles

    def test_expected_devices(self):
        assert set(_run("io-logs").device_clocks) == {"disk"}
        assert set(_run("io-kv").device_clocks) == {"disk"}
        assert set(_run("io-echo").device_clocks) == {"net"}


class TestSuiteMembership:
    def test_io_suite_contents_and_order(self):
        assert [w.name for w in io_suite()] == list(FAMILY)

    def test_family_stays_out_of_full_suite(self):
        names = {w.name for w in full_suite()}
        assert names.isdisjoint(FAMILY)

    def test_table1_accepts_io_workloads(self, capsys):
        assert main(["table1", "--workloads", "io-logs"]) == 0
        out = capsys.readouterr().out
        assert "io-logs" in out
