"""VM core: values, heap, threads, class loading, machine lifecycle,
and the runtime library."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.errors import (
    ClassNotFoundError,
    VMError,
)
from repro.jvm.costmodel import ChargeTag
from repro.jvm.heap import Heap
from repro.jvm.machine import JavaVM
from repro.jvm.threads import SimThread, ThreadState
from repro.jvm.values import (
    JArray,
    is_reference,
    wrap_char,
    wrap_int8,
    wrap_int32,
)
from repro.launcher import create_vm, runtime_archive

from helpers import build_app, expr_main, run_main


class TestValueWrapping:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (2**31 - 1, 2**31 - 1), (2**31, -2**31),
        (-2**31 - 1, 2**31 - 1), (2**32, 0), (-1, -1),
    ])
    def test_wrap_int32(self, value, expected):
        assert wrap_int32(value) == expected

    def test_wrap_int8(self):
        assert wrap_int8(127) == 127
        assert wrap_int8(128) == -128
        assert wrap_int8(255) == -1

    def test_wrap_char(self):
        assert wrap_char(-1) == 0xFFFF
        assert wrap_char(65) == 65

    def test_array_normalization_per_kind(self):
        heap = Heap()
        byte_arr = heap.alloc_array(ArrayKind.BYTE, 1)
        assert byte_arr.normalize(300) == 44
        float_arr = heap.alloc_array(ArrayKind.FLOAT, 1)
        assert float_arr.normalize(2) == 2.0
        ref_arr = heap.alloc_array(ArrayKind.REF, 1)
        sentinel = object()
        assert ref_arr.normalize(sentinel) is sentinel

    def test_is_reference(self):
        heap = Heap()
        assert is_reference(None)
        assert is_reference(heap.alloc_array(ArrayKind.INT, 0))
        assert not is_reference(42)


class TestHeap:
    def test_object_ids_unique(self):
        heap = Heap()
        a = heap.alloc_array(ArrayKind.INT, 1)
        b = heap.alloc_array(ArrayKind.INT, 1)
        assert a.object_id != b.object_id

    def test_negative_length_rejected(self):
        with pytest.raises(VMError):
            Heap().alloc_array(ArrayKind.INT, -1)

    def test_float_arrays_default_to_zero_float(self):
        arr = Heap().alloc_array(ArrayKind.FLOAT, 3)
        assert arr.data == [0.0, 0.0, 0.0]

    def test_intern_returns_same_object(self):
        vm = create_vm()
        vm.threads.current = vm.threads.create("t")
        a = vm.intern_string("hello")
        b = vm.intern_string("hello")
        assert a is b
        c = vm.new_string("hello")
        assert c is not a

    def test_allocation_stats(self):
        heap = Heap()
        heap.alloc_array(ArrayKind.INT, 4)
        assert heap.arrays_allocated == 1


class TestThreads:
    def test_charge_updates_counter_and_tags(self):
        thread = SimThread(1, "t")
        thread.charge(100, ChargeTag.BYTECODE)
        thread.charge(50, ChargeTag.NATIVE)
        assert thread.cycles_total == 150
        assert thread.cycles_by_tag[ChargeTag.BYTECODE] == 100
        assert thread.cycles_by_tag[ChargeTag.NATIVE] == 50

    def test_double_start_rejected(self):
        vm = create_vm()
        thread = vm.threads.create("w")
        vm.threads.enqueue(thread)
        with pytest.raises(VMError, match="twice"):
            vm.threads.enqueue(thread)

    def test_java_thread_lifecycle(self):
        worker = ClassAssembler("th.Worker",
                                super_name="java.lang.Thread")
        worker.field("done", static=True, default=0)
        with worker.method("run", "()V") as m:
            m.iconst(7).putstatic("th.Worker", "done")
            m.return_()
        main = ClassAssembler("th.Main")
        with main.method("main", "()V", static=True) as m:
            m.new("th.Worker").dup()
            m.invokespecial("th.Worker", "<init>", "()V").astore(0)
            m.aload(0).invokevirtual("th.Worker", "start", "()V")
            m.aload(0).invokevirtual("th.Worker", "join", "()V")
            m.getstatic("java.lang.System", "out")
            m.getstatic("th.Worker", "done")
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.return_()
        vm = run_main(build_app(worker, main), "th.Main")
        assert vm.console[-1] == "7"
        states = [t.state for t in vm.threads.all_threads]
        assert all(s is ThreadState.TERMINATED for s in states)

    def test_unjoined_thread_drained_before_vm_death(self):
        worker = ClassAssembler("th2.Worker",
                                super_name="java.lang.Thread")
        with worker.method("run", "()V") as m:
            m.getstatic("java.lang.System", "out")
            m.ldc("late").invokevirtual(
                "java.io.PrintStream", "println",
                "(Ljava.lang.String;)V")
            m.return_()
        main = ClassAssembler("th2.Main")
        with main.method("main", "()V", static=True) as m:
            m.new("th2.Worker").dup()
            m.invokespecial("th2.Worker", "<init>", "()V")
            m.invokevirtual("th2.Worker", "start", "()V")
            m.return_()
        vm = run_main(build_app(worker, main), "th2.Main")
        assert "late" in vm.console

    def test_per_thread_counters_are_separate(self):
        worker = ClassAssembler("th3.Worker",
                                super_name="java.lang.Thread")
        with worker.method("run", "()V") as m:
            m.iconst(0).istore(1)
            m.label("t")
            m.iload(1).ldc(2000).if_icmpge("e")
            m.iinc(1, 1).goto("t")
            m.label("e")
            m.return_()
        main = ClassAssembler("th3.Main")
        with main.method("main", "()V", static=True) as m:
            m.new("th3.Worker").dup()
            m.invokespecial("th3.Worker", "<init>", "()V").astore(0)
            m.aload(0).invokevirtual("th3.Worker", "start", "()V")
            m.aload(0).invokevirtual("th3.Worker", "join", "()V")
            m.return_()
        vm = run_main(build_app(worker, main), "th3.Main")
        threads = vm.threads.all_threads
        assert len(threads) == 2
        worker_thread = threads[1]
        assert worker_thread.cycles_total > 0
        assert vm.threads.total_cycles() == sum(
            t.cycles_total for t in threads)


class TestClassLoader:
    def test_missing_class(self):
        vm = create_vm()
        vm.threads.current = vm.threads.create("t")
        with pytest.raises(ClassNotFoundError):
            vm.loader.load("no.Such")

    def test_loading_is_idempotent(self):
        vm = create_vm()
        vm.threads.current = vm.threads.create("t")
        a = vm.loader.load("java.lang.String")
        b = vm.loader.load("java.lang.String")
        assert a is b

    def test_superclass_chain_links(self):
        vm = create_vm()
        vm.threads.current = vm.threads.create("t")
        npe = vm.loader.load("java.lang.NullPointerException")
        assert npe.is_subclass_of("java.lang.RuntimeException")
        assert npe.is_subclass_of("java.lang.Throwable")
        assert npe.is_subclass_of("java.lang.Object")
        assert not npe.is_subclass_of("java.lang.Error")

    def test_bootclasspath_prepend_wins(self):
        # an instrumented-style shadow class on the prepend path must
        # be chosen over the runtime library's version
        shadow = ClassAssembler("java.lang.Math")
        with shadow.method("abs", "(I)I", static=True) as m:
            m.iconst(999).ireturn()
        vm = create_vm()
        vm.loader.prepend_boot_archive(build_app(shadow))

        def body(m):
            m.iconst(-5).invokestatic("java.lang.Math", "abs", "(I)I")

        vm.loader.add_classpath_archive(
            build_app(expr_main("bp.Main", body)))
        vm.launch("bp.Main")
        assert vm.console[-1] == "999"

    def test_class_loading_charges_vm_cycles(self):
        _, vm = _run_trivial()
        assert vm.ground_truth()["vm"] > 0

    def test_loaded_class_listing(self):
        _, vm = _run_trivial()
        names = [c.name for c in vm.loader.loaded_classes()]
        assert "java.lang.Object" in names


def _run_trivial():
    from helpers import run_expr

    return run_expr(lambda m: m.iconst(1))


class TestMachine:
    def test_single_launch_enforced(self):
        _, vm = _run_trivial()
        with pytest.raises(VMError):
            vm.launch("again.Main")

    def test_agents_cannot_attach_after_launch(self):
        from repro.agents.counting import CountingAgent

        _, vm = _run_trivial()
        with pytest.raises(VMError):
            vm.attach_agent(CountingAgent())

    def test_main_requires_static_main(self):
        c = ClassAssembler("nm.Main")
        with c.method("notMain", "()V", static=True) as m:
            m.return_()
        from repro.errors import NoSuchMethodError

        with pytest.raises(NoSuchMethodError):
            run_main(build_app(c), "nm.Main")

    def test_elapsed_seconds_uses_clock(self):
        _, vm = _run_trivial()
        assert vm.elapsed_seconds == pytest.approx(
            vm.total_cycles / vm.config.clock_hz)

    def test_ground_truth_fraction_bounds(self):
        _, vm = _run_trivial()
        assert 0.0 <= vm.ground_truth_native_fraction() <= 1.0

    def test_main_entry_counts_as_jni_invocation(self):
        _, vm = _run_trivial()
        assert vm.jni_invocations >= 1


class TestRuntimeLibrary:
    def test_archive_contains_core_classes(self):
        archive = runtime_archive()
        for name in ("java.lang.Object", "java.lang.String",
                     "java.lang.System", "java.lang.StringBuilder",
                     "java.lang.Math", "java.lang.Thread",
                     "java.lang.Throwable", "java.util.Random",
                     "java.io.FileInputStream", "java.io.PrintStream",
                     "java.util.zip.CRC32"):
            assert name in archive, name

    def test_string_builder_grows(self):
        def body(m):
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.astore(0)
            m.iconst(0).istore(1)
            m.label("t")
            m.iload(1).iconst(40).if_icmpge("e")
            m.aload(0).ldc("0123456789")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            m.pop()
            m.iinc(1, 1).goto("t")
            m.label("e")
            m.aload(0).invokevirtual("java.lang.StringBuilder",
                                     "length", "()I")

        from helpers import run_expr

        result, _ = run_expr(body)
        assert result == 400

    def test_string_builder_to_string(self):
        def body(m):
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc("a=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            m.iconst(-17)
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.iconst(33)
            m.invokevirtual("java.lang.StringBuilder", "appendChar",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.lang.String", "length", "()I")

        from helpers import run_expr

        result, _ = run_expr(body)
        assert result == len("a=-17!")

    def test_random_lcg_sequence(self):
        def body(m):
            m.new("java.util.Random").dup().ldc(42)
            m.invokespecial("java.util.Random", "<init>", "(I)V")
            m.astore(0)
            m.aload(0).invokevirtual("java.util.Random", "next", "()I")
            m.pop()
            m.aload(0).invokevirtual("java.util.Random", "next", "()I")

        from helpers import run_expr

        result, _ = run_expr(body)
        seed = 42
        for _ in range(2):
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        assert result == seed

    def test_math_helpers(self):
        from helpers import run_expr

        result, _ = run_expr(
            lambda m: m.iconst(-9).invokestatic("java.lang.Math",
                                                "abs", "(I)I"))
        assert result == 9
        result, _ = run_expr(
            lambda m: m.iconst(3).iconst(8).invokestatic(
                "java.lang.Math", "min", "(II)I"))
        assert result == 3

    def test_character_class_helpers(self):
        from helpers import run_expr

        result, _ = run_expr(
            lambda m: m.iconst(ord("7")).invokestatic(
                "java.lang.Character", "isDigit", "(I)I"))
        assert result == 1
        result, _ = run_expr(
            lambda m: m.iconst(ord("Z")).invokestatic(
                "java.lang.Character", "toLowerCase", "(I)I"))
        assert result == ord("z")
