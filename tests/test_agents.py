"""The profiling agents: SPA, IPA, the counting baseline, and the
call-chain extension — accuracy against simulator ground truth."""

import pytest

from repro.agents.callchain import CallChainAgent
from repro.agents.counting import CountingAgent
from repro.agents.ipa import IPA
from repro.agents.spa import SPA
from repro.bytecode.assembler import ClassAssembler
from repro.classfile.archive import ClassArchive
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.workloads.base import Workload, WorkloadResultCheck


class MixedWorkload(Workload):
    """A small workload with a known bytecode/native mix: a hot loop
    plus a native string hash every 16 iterations."""

    name = "mixed"
    main_class = "mix.Main"

    def __init__(self, scale: int = 1, iterations: int = 6000):
        super().__init__(scale)
        self.iterations = iterations

    def build_classes(self) -> ClassArchive:
        c = ClassAssembler("mix.Main")
        with c.method("step", "(I)I", static=True) as m:
            m.iload(0).iconst(5).imul().iconst(3).iadd()
            m.ldc(65521).irem().ireturn()
        with c.method("main", "()V", static=True) as m:
            m.iconst(1).istore(0)
            m.iconst(0).istore(1)
            m.label("t")
            m.iload(1).ldc(self.iterations).if_icmpge("e")
            m.iload(0).invokestatic("mix.Main", "step", "(I)I")
            m.istore(0)
            m.iload(1).iconst(15).iand().ifne("skip")
            m.ldc("a moderately long string constant for hashing")
            m.invokevirtual("java.lang.String", "hashCode", "()I")
            m.pop()
            m.label("skip")
            m.iinc(1, 1).goto("t")
            m.label("e")
            m.getstatic("java.lang.System", "out").iload(0)
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.return_()
        archive = ClassArchive()
        archive.put_class(c.build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        return WorkloadResultCheck(bool(vm.console),
                                   "no output" if not vm.console
                                   else "")


@pytest.fixture(scope="module")
def runs():
    """Baseline, SPA and IPA runs over the same workload."""
    workload = MixedWorkload()
    return {
        "base": execute(workload, RunConfig(agent=AgentSpec.none())),
        "spa": execute(workload, RunConfig(agent=AgentSpec.spa())),
        "ipa": execute(workload, RunConfig(agent=AgentSpec.ipa())),
        "workload": workload,
    }


class TestSPA:
    def test_reports_both_buckets(self, runs):
        report = runs["spa"].agent_report
        assert report["total_time_bytecode"] > 0
        assert report["total_time_native"] > 0
        assert report["vm_death_seen"]

    def test_counts_invocations(self, runs):
        report = runs["spa"].agent_report
        # step() called `iterations` times plus runtime methods
        assert report["java_method_invocations"] > 6000
        # one native hash per 16 iterations
        assert report["native_method_invocations"] >= 370

    def test_overhead_is_catastrophic(self, runs):
        ratio = runs["spa"].cycles / runs["base"].cycles
        assert ratio > 15  # >1500%, the paper's floor

    def test_jit_disabled(self, runs):
        assert runs["spa"].jit_vetoed
        assert runs["spa"].jit_compiled == 0

    def test_measurement_is_perturbed(self, runs):
        # SPA's own interference (no JIT) skews the reported split —
        # the paper's point about measurement perturbation
        truth = runs["base"].ground_truth_native_fraction * 100
        measured = runs["spa"].agent_report["percent_native"]
        assert abs(measured - truth) > 0.5


class TestIPA:
    def test_overhead_is_moderate(self, runs):
        ratio = runs["ipa"].cycles / runs["base"].cycles
        assert ratio < 1.35  # < 35 %

    def test_gap_between_agents_is_orders_of_magnitude(self, runs):
        spa_overhead = runs["spa"].cycles / runs["base"].cycles - 1
        ipa_overhead = runs["ipa"].cycles / runs["base"].cycles - 1
        assert spa_overhead / max(ipa_overhead, 1e-9) > 50

    def test_jit_stays_enabled(self, runs):
        assert not runs["ipa"].jit_vetoed
        assert runs["ipa"].jit_compiled > 0

    def test_recovers_ground_truth_native_percent(self, runs):
        truth = runs["base"].ground_truth_native_fraction * 100
        measured = runs["ipa"].agent_report["percent_native"]
        assert measured == pytest.approx(truth, abs=1.5)

    def test_counts_j2n_transitions(self, runs):
        report = runs["ipa"].agent_report
        # ~ one native hash per 16 iterations (plus println etc.)
        assert 370 <= report["native_method_calls"] <= 600

    def test_counts_n2j_transitions(self, runs):
        # the launcher's CallStaticVoidMethod at minimum
        assert runs["ipa"].agent_report["jni_calls"] >= 1

    def test_compensation_improves_accuracy(self):
        workload = MixedWorkload()
        base = execute(workload, RunConfig(agent=AgentSpec.none()))
        truth = base.ground_truth_native_fraction * 100
        with_comp = execute(workload, RunConfig(
            agent=AgentSpec.ipa(compensate=True)))
        without = execute(workload, RunConfig(
            agent=AgentSpec.ipa(compensate=False)))
        err_with = abs(
            with_comp.agent_report["percent_native"] - truth)
        err_without = abs(
            without.agent_report["percent_native"] - truth)
        assert err_with < err_without

    def test_instrumentation_stats_reported(self, runs):
        assert runs["ipa"].agent_report["methods_wrapped"] > 30

    def test_dynamic_instrumentation_costs_more(self):
        workload = MixedWorkload()
        static = execute(workload, RunConfig(
            agent=AgentSpec.ipa(instrumentation="static")))
        dynamic = execute(workload, RunConfig(
            agent=AgentSpec.ipa(instrumentation="dynamic")))
        assert dynamic.cycles > static.cycles
        # both count the same J2N transitions
        assert dynamic.agent_report["native_method_calls"] == \
            static.agent_report["native_method_calls"]

    def test_results_are_deterministic(self):
        workload = MixedWorkload()
        a = execute(workload, RunConfig(agent=AgentSpec.ipa()))
        b = execute(workload, RunConfig(agent=AgentSpec.ipa()))
        assert a.cycles == b.cycles
        assert a.agent_report == b.agent_report


class TestCountingBaseline:
    def test_counts_match_spa(self, runs):
        workload = runs["workload"]
        counting = CountingAgent()
        result = execute(workload, RunConfig(agent=AgentSpec(
            "counting", lambda: counting)))
        spa_report = runs["spa"].agent_report
        report = result.agent_report
        assert report["native_method_invocations"] == \
            spa_report["native_method_invocations"]

    def test_no_timing_information(self, runs):
        counting = CountingAgent()
        workload = runs["workload"]
        result = execute(workload, RunConfig(agent=AgentSpec(
            "counting", lambda: counting)))
        assert "percent_native" not in result.agent_report

    def test_disables_jit_like_interpreted_kaffe(self, runs):
        workload = runs["workload"]
        result = execute(workload, RunConfig(agent=AgentSpec(
            "counting", CountingAgent)))
        assert result.jit_vetoed


class TestCallChainExtension:
    def test_builds_mixed_chains(self, runs):
        workload = runs["workload"]
        agent = CallChainAgent()
        execute(workload, RunConfig(agent=AgentSpec(
            "callchain", lambda: agent)))
        chains = agent.mixed_chains()
        assert chains, "no mixed Java/native chains found"
        # the native hashCode must appear at the end of a chain that
        # started in main
        flat = [" > ".join(chain) for chain, _, _ in chains]
        assert any("hashCode" in text for text in flat)
        assert any("mix.Main.main()V" in text for text in flat)

    def test_chain_counts_and_cycles(self, runs):
        workload = runs["workload"]
        agent = CallChainAgent()
        execute(workload, RunConfig(agent=AgentSpec(
            "cc", lambda: agent)))
        for chain, calls, cycles in agent.mixed_chains():
            assert calls > 0
            assert cycles >= 0

    def test_report_shape(self, runs):
        workload = runs["workload"]
        agent = CallChainAgent()
        execute(workload, RunConfig(agent=AgentSpec(
            "cc", lambda: agent)))
        report = agent.report()
        assert report["threads"] >= 1
        assert report["hottest_mixed_chains"]

    def test_deepest_chain(self, runs):
        workload = runs["workload"]
        agent = CallChainAgent()
        execute(workload, RunConfig(agent=AgentSpec(
            "cc", lambda: agent)))
        deepest = agent.deepest_chain()
        assert deepest is not None and len(deepest) >= 2


class TestThreadEndFoldIsIdempotent:
    """THREAD_END folds the thread's accumulated times into the global
    totals.  The fold must also reset the TLS context: a duplicate
    THREAD_END (or any later fold) may only contribute the cycles that
    elapsed *since* the first fold, never re-add the whole run."""

    def _run_and_refire(self, agent):
        from repro.launcher import create_vm

        workload = MixedWorkload(iterations=800)
        vm = create_vm()
        vm.attach_agent(agent)
        vm.loader.add_classpath_archive(workload.archive)
        vm.launch(workload.main_class)
        folded = agent.total_time_bytecode + agent.total_time_native
        assert folded > 0
        # a buggy event source delivers THREAD_END twice while the
        # thread is still current
        thread = vm.threads.all_threads[0]
        vm.threads.current = thread
        vm.jvmti.dispatch_thread_end(thread)
        refolded = agent.total_time_bytecode + agent.total_time_native
        return folded, refolded

    def test_spa_duplicate_thread_end_does_not_double_count(self):
        folded, refolded = self._run_and_refire(SPA())
        # only the sliver between the two events (event work, PCL
        # reads) may be added — a re-fold of the run would re-add
        # hundreds of thousands of cycles
        assert refolded - folded < folded * 0.01

    def test_ipa_duplicate_thread_end_does_not_double_count(self):
        folded, refolded = self._run_and_refire(
            IPA(instrumentation="none"))
        assert refolded - folded < folded * 0.01
