"""COZ-style causal profiling: virtual predictions must agree with
actually editing the cost model, cycle for cycle at one core."""

import pytest

from repro.errors import HarnessError
from repro.harness.causal import (
    CausalExperiment,
    CausalSpec,
    parse_speedup,
    scaled,
)
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.workloads import get_workload

READ = "java.io.RandomAccessFile.readBytes([BII)I"
RECV = "java.net.Socket.recv0([BII)I"


def _causal_run(workload_name, spec):
    return execute(get_workload(workload_name),
                   RunConfig(agent=AgentSpec.none(), causal=spec))


class TestParseSpeedup:
    def test_parses_method_and_factor(self):
        assert parse_speedup("java.net.Socket.recv0=2.5") == \
            ("java.net.Socket.recv0", 2.5)

    @pytest.mark.parametrize("text", ["no-equals", "=2.0",
                                      "a.B.m=zero", "a.B.m=0",
                                      "a.B.m=-1"])
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(HarnessError):
            parse_speedup(text)


class TestExperimentArithmetic:
    def test_virtual_mode_leaves_charges_untouched(self):
        exp = CausalExperiment(CausalSpec(method="a.B.m", factor=2.0))
        assert exp.cpu_charge("a.B.m", 1000) == 1000
        assert exp.device_charge("a.B.m", 500) == 500
        assert exp.saved_total == 500 + 250
        assert exp.predicted_wall(10_000) == 10_000 - 750

    def test_actual_mode_rescales_charges(self):
        exp = CausalExperiment(CausalSpec(method="a.B.m", factor=4.0,
                                          virtual=False))
        assert exp.cpu_charge("a.B.m", 1000) == scaled(1000, 4.0)
        assert exp.device_charge("a.B.m", 999) == scaled(999, 4.0)

    def test_other_methods_pass_through(self):
        exp = CausalExperiment(CausalSpec(method="a.B.m", factor=2.0,
                                          virtual=False))
        assert exp.cpu_charge("a.B.other", 1000) == 1000
        assert exp.saved_total == 0

    def test_sweep_accumulates_per_factor(self):
        exp = CausalExperiment(CausalSpec(method="a.B.m", factor=2.0,
                                          sweep=(2.0, 4.0)))
        exp.device_charge("a.B.m", 1000)
        doc = exp.summary(wall_cycles=10_000)
        rows = {r["factor"]: r for r in doc["sweep"]}
        assert rows[2.0]["saved"] == 500
        assert rows[4.0]["saved"] == 750
        assert rows[4.0]["predicted_wall_cycles"] == 9_250
        assert doc["predicted_wall_cycles"] == 9_500


class TestEndToEnd:
    """Acceptance criterion: virtual prediction within 1 % of the
    measured effect of actually rescaling the cost model."""

    @pytest.mark.parametrize("workload,method", [
        ("io-kv", READ), ("io-echo", RECV)])
    @pytest.mark.parametrize("factor", [2.0, 8.0])
    def test_prediction_matches_actual_rescale(self, workload,
                                               method, factor):
        virtual = _causal_run(workload, CausalSpec(
            method=method, factor=factor))
        assert virtual.causal["cpu_cycles"] > 0
        assert virtual.causal["device_cycles"] > 0
        predicted = virtual.causal["predicted_wall_cycles"]
        actual = _causal_run(workload, CausalSpec(
            method=method, factor=factor, virtual=False))
        error = abs(actual.wall_cycles - predicted) \
            / actual.wall_cycles * 100.0
        assert error <= 1.0, (predicted, actual.wall_cycles)

    def test_virtual_run_is_unperturbed(self):
        plain = execute(get_workload("io-kv"),
                        RunConfig(agent=AgentSpec.none()))
        virtual = _causal_run("io-kv", CausalSpec(method=READ,
                                                  factor=2.0))
        assert virtual.cycles == plain.cycles
        assert virtual.wall_cycles == plain.wall_cycles
        assert virtual.console == plain.console

    def test_actual_rescale_keeps_the_answer(self):
        plain = execute(get_workload("io-kv"),
                        RunConfig(agent=AgentSpec.none()))
        actual = _causal_run("io-kv", CausalSpec(
            method=READ, factor=2.0, virtual=False))
        # faster disk, same bytes: console (and the mirror check)
        # unchanged, wall clock strictly better
        assert actual.console == plain.console
        assert actual.validation_ok
        assert actual.wall_cycles < plain.wall_cycles

    def test_slowdown_factor_predicts_regression(self):
        virtual = _causal_run("io-logs", CausalSpec(method=READ,
                                                    factor=0.5))
        assert virtual.causal["predicted_wall_cycles"] > \
            virtual.wall_cycles

    def test_absent_method_predicts_nothing(self):
        virtual = _causal_run("io-logs", CausalSpec(
            method="java.net.Socket.recv0([BII)I", factor=2.0))
        assert virtual.causal["saved_total"] == 0
        assert virtual.causal["predicted_wall_cycles"] == \
            virtual.wall_cycles
