"""Interpreter edge cases: float arrays, null paths, nested handlers,
cast corners, clinit-triggering instructions, IINC wrapping."""

import math

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind

from helpers import build_app, expr_main, run_expr, run_main


class TestFloatArrays:
    def test_default_and_store(self):
        def body(m):
            m.iconst(3).newarray(ArrayKind.FLOAT).astore(0)
            m.aload(0).iconst(1).ldc(2.5).iastore()
            m.aload(0).iconst(1).iaload()
            m.aload(0).iconst(0).iaload()  # default 0.0
            m.iadd().ldc(4.0).imul().f2i()

        result, _ = run_expr(body)
        assert result == 10

    def test_int_store_coerced_to_float(self):
        def body(m):
            m.iconst(1).newarray(ArrayKind.FLOAT).astore(0)
            m.aload(0).iconst(0).iconst(7).iastore()
            m.aload(0).iconst(0).iaload()
            m.ldc(2.0).fdiv().ldc(10.0).imul().f2i()

        result, _ = run_expr(body)
        assert result == 35


class TestNullPaths:
    def _attempt(self, try_body, check_class, name):
        c = ClassAssembler(name)
        with c.method("attempt", "()I", static=True) as m:
            m.label("try")
            try_body(m)
            m.label("try_end")
            m.iconst(0).ireturn()
            m.label("h")
            m.instanceof(check_class)
            m.ireturn()
            m.try_catch("try", "try_end", "h", None)
        main = expr_main(name + "M", lambda m: m.invokestatic(
            name, "attempt", "()I"))
        vm = run_main(build_app(c, main), name + "M")
        return vm.console[-1]

    def test_getfield_on_null(self):
        assert self._attempt(
            lambda m: m.aconst_null()
            .getfield("java.lang.Throwable", "message").pop(),
            "java.lang.NullPointerException", "np.GF") == "1"

    def test_putfield_on_null(self):
        assert self._attempt(
            lambda m: m.aconst_null().iconst(1)
            .putfield("java.lang.Throwable", "message"),
            "java.lang.NullPointerException", "np.PF") == "1"

    def test_invoke_on_null(self):
        assert self._attempt(
            lambda m: m.aconst_null()
            .invokevirtual("java.lang.String", "length", "()I").pop(),
            "java.lang.NullPointerException", "np.IV") == "1"

    def test_throw_null_becomes_npe(self):
        assert self._attempt(
            lambda m: m.aconst_null().athrow(),
            "java.lang.NullPointerException", "np.TH") == "1"

    def test_monitorenter_on_null(self):
        assert self._attempt(
            lambda m: m.aconst_null().monitorenter(),
            "java.lang.NullPointerException", "np.ME") == "1"

    def test_checkcast_of_null_succeeds(self):
        def body(m):
            m.aconst_null().checkcast("java.lang.String")
            m.ifnull("ok")
            m.iconst(0).goto("end")
            m.label("ok").iconst(1)
            m.label("end")

        result, _ = run_expr(body)
        assert result == 1


class TestNestedExceptionHandling:
    def test_handler_inside_handler(self):
        c = ClassAssembler("ne.C")
        with c.method("attempt", "()I", static=True) as m:
            m.label("outer_try")
            m.iconst(1).iconst(0).idiv().pop()
            m.label("outer_end")
            m.iconst(0).ireturn()
            # outer handler: triggers a second exception, caught inner
            m.label("outer_h")
            m.pop()
            m.label("inner_try")
            m.aconst_null().arraylength().pop()
            m.label("inner_end")
            m.iconst(0).ireturn()
            m.label("inner_h")
            m.instanceof("java.lang.NullPointerException")
            m.iconst(100).iadd().ireturn()
            m.try_catch("outer_try", "outer_end", "outer_h",
                        "java.lang.ArithmeticException")
            m.try_catch("inner_try", "inner_end", "inner_h", None)
        main = expr_main("ne.Main", lambda m: m.invokestatic(
            "ne.C", "attempt", "()I"))
        vm = run_main(build_app(c, main), "ne.Main")
        assert vm.console[-1] == "101"

    def test_first_matching_entry_wins(self):
        c = ClassAssembler("fm.C")
        with c.method("attempt", "()I", static=True) as m:
            m.label("try")
            m.iconst(1).iconst(0).idiv().pop()
            m.label("try_end")
            m.iconst(0).ireturn()
            m.label("h1")
            m.pop().iconst(1).ireturn()
            m.label("h2")
            m.pop().iconst(2).ireturn()
            # both cover the range; the first in table order wins
            m.try_catch("try", "try_end", "h1",
                        "java.lang.ArithmeticException")
            m.try_catch("try", "try_end", "h2", None)
        main = expr_main("fm.Main", lambda m: m.invokestatic(
            "fm.C", "attempt", "()I"))
        vm = run_main(build_app(c, main), "fm.Main")
        assert vm.console[-1] == "1"

    def test_exception_in_clinit_propagates(self):
        bad = ClassAssembler("cl.Bad")
        bad.field("x", static=True, default=0)
        with bad.method("<clinit>", "()V", static=True) as m:
            m.iconst(1).iconst(0).idiv().pop()
            m.return_()

        def body(m):
            m.getstatic("cl.Bad", "x")

        vm = run_main(build_app(bad, expr_main("cl.Main", body)),
                      "cl.Main")
        thread = vm.threads.all_threads[0]
        assert thread.uncaught_exception is not None
        assert thread.uncaught_exception.class_name == \
            "java.lang.ArithmeticException"


class TestMiscSemantics:
    def test_iinc_wraps_int32(self):
        def body(m):
            m.ldc(2147483647).istore(0)
            m.iinc(0, 1)
            m.iload(0)

        result, _ = run_expr(body)
        assert result == -2147483648

    def test_instanceof_array_is_object_only(self):
        def body(m):
            m.iconst(1).newarray(ArrayKind.INT).astore(0)
            m.aload(0).instanceof("java.lang.Object")
            m.aload(0).instanceof("java.lang.String")
            m.iconst(10).imul().iadd()

        result, _ = run_expr(body)
        assert result == 1

    def test_string_constants_are_interned_across_classes(self):
        other = ClassAssembler("si.Other")
        with other.method("give", "()Ljava.lang.String;",
                          static=True) as m:
            m.ldc("shared-constant").areturn()

        def body(m):
            m.ldc("shared-constant")
            m.invokestatic("si.Other", "give",
                           "()Ljava.lang.String;")
            m.if_acmpeq("same")
            m.iconst(0).goto("end")
            m.label("same").iconst(1)
            m.label("end")

        vm = run_main(build_app(other, expr_main("si.Main", body)),
                      "si.Main")
        assert vm.console[-1] == "1"

    def test_fields_shadow_free_inheritance(self):
        base = ClassAssembler("fi.Base")
        base.field("v", default=5)
        with base.method("<init>", "()V") as m:
            m.return_()
        sub = ClassAssembler("fi.Sub", super_name="fi.Base")
        with sub.method("<init>", "()V") as m:
            m.return_()
        with sub.method("read", "()I") as m:
            m.aload(0).getfield("fi.Sub", "v").ireturn()

        def body(m):
            m.new("fi.Sub").dup()
            m.invokespecial("fi.Sub", "<init>", "()V")
            m.invokevirtual("fi.Sub", "read", "()I")

        vm = run_main(build_app(base, sub,
                                expr_main("fi.Main", body)),
                      "fi.Main")
        assert vm.console[-1] == "5"

    def test_static_field_resolution_walks_supers(self):
        base = ClassAssembler("sf.Base")
        base.field("shared", static=True, default=77)
        sub = ClassAssembler("sf.Sub", super_name="sf.Base")

        def body(m):
            m.getstatic("sf.Sub", "shared")

        vm = run_main(build_app(base, sub,
                                expr_main("sf.Main", body)),
                      "sf.Main")
        assert vm.console[-1] == "77"


class TestFloatDivisionByZero:
    """JVM float semantics (JVMS fdiv): dividing by zero never throws —
    x/0.0 is ±Infinity with the XOR of the operand signs, and 0.0/0.0
    is NaN.  Only integer idiv/irem raise ArithmeticException."""

    def _fdiv(self, a, b):
        c = ClassAssembler("fz.Main")
        c.field("r", static=True, default=0.0)
        with c.method("main", "()V", static=True) as m:
            m.ldc(a).ldc(b).fdiv()
            m.putstatic("fz.Main", "r")
            m.return_()
        vm = run_main(build_app(c), "fz.Main")
        thread = vm.threads.all_threads[0]
        assert thread.uncaught_exception is None, \
            "fdiv by zero must not throw"
        return vm.loader.loaded_class("fz.Main").statics["r"]

    def test_positive_by_zero_is_positive_infinity(self):
        assert self._fdiv(1.5, 0.0) == math.inf

    def test_negative_by_zero_is_negative_infinity(self):
        assert self._fdiv(-1.5, 0.0) == -math.inf

    def test_positive_by_negative_zero_is_negative_infinity(self):
        assert self._fdiv(2.0, -0.0) == -math.inf

    def test_zero_by_zero_is_nan(self):
        assert math.isnan(self._fdiv(0.0, 0.0))

    def test_finite_division_unchanged(self):
        assert self._fdiv(5.0, 2.0) == 2.5

    def test_integer_division_by_zero_still_throws(self):
        c = ClassAssembler("iz.Main")
        with c.method("main", "()V", static=True) as m:
            m.iconst(7).iconst(0).idiv().istore(0)
            m.return_()
        vm = run_main(build_app(c), "iz.Main")
        thread = vm.threads.all_threads[0]
        assert thread.uncaught_exception is not None
        assert thread.uncaught_exception.class_name == \
            "java.lang.ArithmeticException"
