"""Bytecode instrumentation: the Figure-2 wrapper, static and dynamic
drivers."""

import pytest

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import Op
from repro.bytecode.verifier import verify_class
from repro.classfile.members import ACC_NATIVE
from repro.classfile.serializer import dump_class, load_class
from repro.errors import InstrumentationError
from repro.instrument.static_instr import StaticInstrumenter
from repro.instrument.wrapper_gen import (
    InstrumentationConfig,
    instrument_classfile,
)

from helpers import build_app


def _native_class():
    c = ClassAssembler("nat.C")
    c.native_method("compute", "(I[B)I", static=True)
    c.native_method("touch", "()V")  # instance
    with c.method("plain", "()V", static=True) as m:
        m.return_()
    return c.build()


class TestWrapperGeneration:
    def test_native_renamed_and_wrapper_added(self):
        cf = _native_class()
        config = InstrumentationConfig()
        wrapped = instrument_classfile(cf, config)
        assert wrapped == 2
        renamed = cf.find_method(config.prefix + "compute", "(I[B)I")
        assert renamed is not None and renamed.is_native
        wrapper = cf.find_method("compute", "(I[B)I")
        assert wrapper is not None and not wrapper.is_native

    def test_wrapper_structure_matches_figure_2(self):
        cf = _native_class()
        config = InstrumentationConfig()
        instrument_classfile(cf, config)
        wrapper = cf.find_method("compute", "(I[B)I")
        ops = [ins.op for ins in wrapper.code]
        # Begin, load args, invoke prefixed, End, return, End, athrow
        assert ops == [Op.INVOKESTATIC, Op.ILOAD, Op.ALOAD,
                       Op.INVOKESTATIC, Op.INVOKESTATIC, Op.IRETURN,
                       Op.INVOKESTATIC, Op.ATHROW]
        entry = wrapper.exception_table[0]
        assert entry.catch_type is None  # finally semantics
        assert entry.start == 1
        assert entry.end == 4

    def test_instance_wrapper_uses_invokespecial(self):
        cf = _native_class()
        instrument_classfile(cf, InstrumentationConfig())
        wrapper = cf.find_method("touch", "()V")
        ops = [ins.op for ins in wrapper.code]
        assert Op.INVOKESPECIAL in ops

    def test_instrumented_class_verifies(self):
        cf = _native_class()
        instrument_classfile(cf, InstrumentationConfig())
        verify_class(cf)

    def test_excluded_class_untouched(self):
        config = InstrumentationConfig()
        runtime = ClassAssembler(config.runtime_class)
        runtime.native_method("J2N_Begin", "()V", static=True)
        cf = runtime.build()
        assert instrument_classfile(cf, config) == 0

    def test_custom_exclusions(self):
        config = InstrumentationConfig(
            excluded_classes=("nat.C",))
        cf = _native_class()
        assert instrument_classfile(cf, config) == 0

    def test_double_instrumentation_detected(self):
        cf = _native_class()
        config = InstrumentationConfig()
        instrument_classfile(cf, config)
        with pytest.raises(InstrumentationError, match="double"):
            instrument_classfile(cf, config)

    def test_class_without_natives_untouched(self):
        c = ClassAssembler("pl.C")
        with c.method("f", "()V", static=True) as m:
            m.return_()
        assert instrument_classfile(c.build(),
                                    InstrumentationConfig()) == 0


class TestStaticInstrumenter:
    def test_archive_pass_preserves_unrelated_bytes(self):
        plain = ClassAssembler("pl.D")
        with plain.method("f", "()V", static=True) as m:
            m.return_()
        archive = build_app(plain)
        original_bytes = archive.get_bytes("pl.D")
        instrumenter = StaticInstrumenter()
        out = instrumenter.instrument_archive(archive)
        assert out.get_bytes("pl.D") == original_bytes

    def test_archive_pass_rewrites_native_classes(self):
        archive = build_app()
        archive.put_class(_native_class())
        instrumenter = StaticInstrumenter()
        out = instrumenter.instrument_archive(archive)
        cf = out.get_class("nat.C")
        assert cf.find_method("compute", "(I[B)I").is_native is False
        assert instrumenter.stats.classes_instrumented == 1
        assert instrumenter.stats.methods_wrapped == 2
        # the input archive is untouched
        assert archive.get_class("nat.C").find_method(
            "compute", "(I[B)I").is_native

    def test_runtime_library_instruments_cleanly(self):
        from repro.launcher import runtime_archive

        instrumenter = StaticInstrumenter()
        out = instrumenter.instrument_archive(runtime_archive())
        assert instrumenter.stats.methods_wrapped > 30
        for cf in out.classes():
            verify_class(cf)

    def test_serialized_roundtrip_of_instrumented_class(self):
        instrumenter = StaticInstrumenter()
        data = dump_class(_native_class())
        out = instrumenter.instrument_class_bytes(data)
        cf = load_class(out)
        prefix = instrumenter.config.prefix
        assert cf.find_method(prefix + "compute", "(I[B)I") is not None


class TestDynamicInstrumenter:
    def test_hook_transforms_and_charges(self):
        from repro.instrument.dynamic_instr import DynamicInstrumenter
        from repro.launcher import create_vm

        vm = create_vm()
        thread = vm.threads.create("t")
        vm.threads.current = thread
        env = vm.jvmti.attach(type("A", (), {"name": "a"})())
        instrumenter = DynamicInstrumenter()
        data = dump_class(_native_class())
        before = thread.cycles_total
        out = instrumenter.hook(env, "nat.C", data)
        assert out is not None
        assert thread.cycles_total > before
        cf = load_class(out)
        assert not cf.find_method("compute", "(I[B)I").is_native

    def test_hook_skips_plain_classes(self):
        from repro.instrument.dynamic_instr import DynamicInstrumenter
        from repro.launcher import create_vm

        vm = create_vm()
        thread = vm.threads.create("t")
        vm.threads.current = thread
        env = vm.jvmti.attach(type("A", (), {"name": "a"})())
        instrumenter = DynamicInstrumenter()
        c = ClassAssembler("pl.E")
        with c.method("f", "()V", static=True) as m:
            m.return_()
        assert instrumenter.hook(env, "pl.E",
                                 dump_class(c.build())) is None
