"""Concurrency correctness subsystem: static lockset/lock-order
analysis, the dynamic happens-before race sanitizer, and their
cross-check.

Contracts pinned here:

* the static side (`analyze_races`): thread-escape over the CHA graph,
  Eraser-style locksets (`race-warning`), the lock-order graph
  (`deadlock-potential`), and the single-threaded short-circuit;
* the dynamic side (`--sanitize race`): FastTrack-style vector clocks
  confirm the seeded races with *both* stacks and cycle timestamps,
  honor monitor/start/join happens-before edges, and never perturb a
  simulated cycle (tables byte-identical on/off, both tiers, serial
  and fanned);
* the cross-check (`--race-check`): dynamic ⊆ static — every confirmed
  race must carry a static warning;
* the typed verifier's MONITORENTER/MONITOREXIT bracketing rule;
* CLI exit codes: confirmed races fail `table1`/`table2`,
  `analyze --strict` makes warning findings fatal.
"""

from pathlib import Path

import pytest
from helpers import build_app, run_main

from repro.analysis import analyze_archives, static_race_check
from repro.analysis.races import analyze_races  # noqa: F401 (API)
from repro.bytecode.assembler import ClassAssembler
from repro.cli import main
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import build_table1
from repro.harness.report import render_table1
from repro.harness.runner import execute
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.launcher import runtime_archive
from repro.observability import ObservabilityConfig
from repro.workloads import get_workload

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _static(workload_name):
    result = analyze_archives(
        [runtime_archive(), get_workload(workload_name).archive],
        races=True)
    assert result.races is not None
    return result.races


def _run(workload_name, cores=1, sanitize="race", observability=None):
    return execute(get_workload(workload_name), RunConfig(
        agent=AgentSpec.none(),
        vm_config=VMConfig(cores=cores, sanitize=sanitize),
        observability=observability))


# -- static analysis ----------------------------------------------------------


class TestStaticRaces:
    def test_racy_counter_gets_race_warning(self):
        races = _static("racy-counter")
        assert races.multithreaded
        assert ("racy.counter.Counter", "count") in races.racy_fields
        assert races.race_warnings >= 1
        rules = {f.rule for f in races.report.findings}
        assert "race-warning" in rules

    def test_racy_lockorder_gets_warning_and_cycle(self):
        races = _static("racy-lockorder")
        assert ("racy.order.Shared", "value") in races.racy_fields
        # A→B in mode 0, B→A in mode 1: one rotation-canonical cycle
        assert races.deadlock_potentials >= 1
        rules = {f.rule for f in races.report.findings}
        assert "deadlock-potential" in rules

    def test_single_threaded_workload_short_circuits(self):
        # db never instantiates a Thread subclass: trivially race-free,
        # no lockset pass at all
        races = _static("db")
        assert not races.multithreaded
        assert races.race_warnings == 0
        assert races.deadlock_potentials == 0

    def test_reactors_static_covers_its_dynamic_race(self):
        # the field the sanitizer confirms at --cores 1 must be
        # statically predicted, or --race-check could never pass
        races = _static("reactors")
        assert ("conc.reactors.Stage", "inCount") in races.racy_fields

    def test_findings_merge_into_analysis_report(self):
        result = analyze_archives(
            [runtime_archive(), get_workload("racy-counter").archive],
            races=True)
        assert result.report.counts()["warning"] >= 1
        assert result.races.to_json()["race_warnings"] >= 1


# -- dynamic sanitizer --------------------------------------------------------


class TestSanitizer:
    def test_racy_counter_confirms_race_with_two_stacks(self):
        result = _run("racy-counter")
        assert result.races, "the seeded race must be confirmed"
        race = result.races[0]
        assert race["class"] == "racy.counter.Counter"
        assert race["field"] == "count"
        for side in ("prior", "current"):
            access = race[side]
            assert access["stack"], "both stacks must be reported"
            assert access["cycles"] >= 0
            assert access["thread"]
        assert race["prior"]["thread"] != race["current"]["thread"]

    def test_racy_lockorder_confirms_race(self):
        # private lock pairs: no shared lock instance, so no
        # happens-before edge hides the inconsistent-lock update
        result = _run("racy-lockorder")
        assert any(r["class"] == "racy.order.Shared"
                   and r["field"] == "value" for r in result.races)

    @pytest.mark.parametrize("name", ["fj-kmeans", "actors",
                                      "reactors"])
    def test_concurrency_family_clean_at_cores4(self, name):
        # the scheduler token totally orders slices at cores >= 2; the
        # shipped family must confirm zero races
        result = _run(name, cores=4)
        assert result.races == []
        assert not result.thread_deaths

    def test_monitor_edge_suppresses_locked_counter(self):
        # same shape as racy-counter but the RMW happens under one
        # shared monitor: release->acquire joins the clocks, no race
        counter = ClassAssembler("lk.Counter")
        counter.field("count", default=0)
        with counter.method("<init>", "()V") as m:
            m.return_()
        worker = ClassAssembler("lk.Worker",
                                super_name="java.lang.Thread")
        worker.field("shared")
        with worker.method("<init>", "(Llk.Counter;)V") as m:
            m.aload(0).aload(1).putfield("lk.Worker", "shared")
            m.return_()
        with worker.method("run", "()V") as m:
            m.iconst(0).istore(1)
            m.label("loop")
            m.iload(1).ldc(8).if_icmpge("done")
            m.aload(0).getfield("lk.Worker", "shared").monitorenter()
            m.aload(0).getfield("lk.Worker", "shared")
            m.dup().getfield("lk.Counter", "count")
            m.iconst(1).iadd().putfield("lk.Counter", "count")
            m.aload(0).getfield("lk.Worker", "shared").monitorexit()
            m.iinc(1, 1).goto("loop")
            m.label("done")
            m.return_()
        main_c = ClassAssembler("lk.Main")
        with main_c.method("main", "()V", static=True) as m:
            m.new("lk.Counter").dup()
            m.invokespecial("lk.Counter", "<init>", "()V").astore(0)
            for slot in (1, 2):
                m.new("lk.Worker").dup().aload(0)
                m.invokespecial("lk.Worker", "<init>",
                                "(Llk.Counter;)V").astore(slot)
            for slot in (1, 2):
                m.aload(slot).invokevirtual("lk.Worker", "start",
                                            "()V")
            for slot in (1, 2):
                m.aload(slot).invokevirtual("lk.Worker", "join",
                                            "()V")
            m.getstatic("java.lang.System", "out")
            m.aload(0).getfield("lk.Counter", "count")
            m.invokevirtual("java.io.PrintStream", "println", "(I)V")
            m.return_()
        vm = run_main(build_app(counter, worker, main_c), "lk.Main",
                      config=VMConfig(sanitize="race"))
        assert vm.console[-1] == "16"
        assert vm.sanitizer.races == []

    def test_join_edge_orders_final_read(self):
        # racy-counter's *main thread* reads count after joining both
        # workers: that read must never be part of a reported race
        result = _run("racy-counter")
        for race in result.races:
            for side in ("prior", "current"):
                assert race[side]["thread"] != "main"

    def test_sanitizer_metrics_emitted(self):
        result = _run("racy-counter",
                      observability=ObservabilityConfig(metrics=True))
        records = {r["name"]: r for r in result.observability["metrics"]
                   if "name" in r}
        assert records["races_confirmed"]["value"] >= 1
        assert records["shadow_words"]["value"] > 0

    def test_no_sanitizer_metrics_when_off(self):
        result = _run("racy-counter", sanitize="off",
                      observability=ObservabilityConfig(metrics=True))
        names = {r.get("name") for r in result.observability["metrics"]}
        assert "races_confirmed" not in names
        assert "shadow_words" not in names
        assert result.races == []


# -- zero-perturbation: tables byte-identical with the sanitizer on -----------


class TestSanitizerParity:
    @pytest.fixture(scope="class")
    def workloads(self):
        return [get_workload("fj-kmeans")]

    @pytest.fixture(scope="class")
    def plain(self, workloads):
        return render_table1(build_table1(
            workloads, vm_config=VMConfig(cores=2)))

    @pytest.mark.parametrize("tier", [True, False],
                             ids=["template", "interp"])
    def test_sanitized_table_identical_per_tier(self, workloads,
                                                plain, tier):
        sanitized = build_table1(workloads, vm_config=VMConfig(
            cores=2, sanitize="race",
            jit_policy=JitPolicy(template_tier=tier)))
        assert render_table1(sanitized) == plain

    def test_jobs4_sanitized_identical(self, workloads, plain):
        sanitized = build_table1(
            workloads, jobs=4,
            vm_config=VMConfig(cores=2, sanitize="race"))
        assert render_table1(sanitized) == plain

    def test_table1_golden_with_sanitizer(self, capsys):
        # the full Table I pipeline under --sanitize race: the suite is
        # race-free, the bytes must match the golden exactly
        assert main(["table1", "--sanitize", "race"]) == 0
        out = capsys.readouterr().out
        assert out == (RESULTS / "table1.txt").read_text()


# -- cross-check: dynamic ⊆ static --------------------------------------------


class TestRaceCheck:
    def test_confirmed_race_predicted_statically(self):
        dynamic = _run("racy-counter").races
        check = static_race_check(
            [runtime_archive(), get_workload("racy-counter").archive],
            dynamic)
        assert check.ok
        assert len(check.confirmed) == len(dynamic)
        assert "ok" in check.summary()
        assert check.to_json()["violations"] == []

    def test_unpredicted_race_fails(self):
        check = static_race_check(
            [runtime_archive(), get_workload("racy-counter").archive],
            [{"class": "racy.counter.Main", "field": "ghost"}])
        assert not check.ok
        assert len(check.violations) == 1
        assert "FAILED" in check.summary()


# -- typed verifier: monitor bracketing ---------------------------------------


class TestMonitorBracketing:
    def _findings(self, body, descriptor="()V"):
        from repro.analysis import analyze_method_types
        c = ClassAssembler("mb.C")
        with c.method("m", descriptor, static=True) as m:
            body(m)
        cf = c.build()
        return analyze_method_types(cf.methods[0], cf.constant_pool,
                                    cf.name)

    def test_balanced_monitors_clean(self):
        def body(m):
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.aload(0).monitorenter()
            m.aload(0).monitorexit()
            m.return_()
        rules = {f.rule for f in self._findings(body)}
        assert "monitor-bracketing" not in rules

    def test_return_holding_monitor_warns(self):
        def body(m):
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.aload(0).monitorenter()
            m.return_()
        findings = [f for f in self._findings(body)
                    if f.rule == "monitor-bracketing"]
        assert findings
        assert "holding" in findings[0].message

    def test_exit_without_enter_warns(self):
        def body(m):
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.aload(0).monitorexit()
            m.return_()
        findings = [f for f in self._findings(body)
                    if f.rule == "monitor-bracketing"]
        assert findings

    def test_inconsistent_depth_at_join_warns(self):
        def body(m):
            m.new("java.lang.Object").dup()
            m.invokespecial("java.lang.Object", "<init>", "()V")
            m.astore(0)
            m.iload(1).ifeq("skip")
            m.aload(0).monitorenter()
            m.label("skip")
            m.aload(0).monitorexit()
            m.return_()
        findings = [f for f in self._findings(body, "(I)V")
                    if f.rule == "monitor-bracketing"]
        assert findings

    def test_suite_has_no_bracketing_warnings(self):
        # every shipped workload brackets its monitors correctly
        result = analyze_archives(
            [runtime_archive(), get_workload("reactors").archive,
             get_workload("racy-lockorder").archive])
        rules = {f.rule for f in result.report.findings}
        assert "monitor-bracketing" not in rules


# -- CLI exit codes -----------------------------------------------------------


class TestCli:
    def test_racy_fixture_fails_table1_under_sanitizer(self, capsys):
        code = main(["table1", "--workloads", "racy-counter",
                     "--sanitize", "race", "--no-ledger"])
        capsys.readouterr()
        assert code == 1

    def test_racy_lockorder_fails_table1_under_sanitizer(self, capsys):
        code = main(["table1", "--workloads", "racy-lockorder",
                     "--sanitize", "race", "--no-ledger"])
        capsys.readouterr()
        assert code == 1

    def test_racy_fixture_passes_without_sanitizer(self, capsys):
        # deterministic checksum: the defect is invisible unless armed
        code = main(["table1", "--workloads", "racy-counter",
                     "--no-ledger"])
        capsys.readouterr()
        assert code == 0

    def test_race_check_passes_on_clean_workload(self, capsys):
        code = main(["table2", "--workloads", "fj-kmeans",
                     "--race-check", "--no-ledger"])
        capsys.readouterr()
        assert code == 0

    def test_analyze_races_exits_zero(self, capsys):
        code = main(["analyze", "--races", "--workload", "db",
                     "--no-ledger"])
        out = capsys.readouterr().out
        assert code == 0
        assert "race analysis" in out

    def test_analyze_strict_fails_on_warnings(self, capsys):
        # racy-counter carries a seeded race-warning: --strict turns
        # the warning finding into a non-zero exit
        code = main(["analyze", "--races", "--strict",
                     "--workload", "racy-counter", "--no-ledger"])
        capsys.readouterr()
        assert code == 1

    def test_analyze_strict_passes_on_clean_input(self, capsys):
        code = main(["analyze", "--races", "--strict",
                     "--workload", "db", "--no-ledger"])
        capsys.readouterr()
        assert code == 0
